(* Tests for the monotonicity classes, the bounded checkers, and the
   query zoo: these are executable versions of the separations of
   Theorem 3.1 and Lemma 3.2 (re-run at larger bounds by the bench
   harness). *)

open Relational
open Monotone
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let violated = Checker.is_violation

let small =
  { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

(* ------------------------------------------------------------------ *)
(* Classes *)

let test_kind_weaker () =
  check_bool "disjoint weaker than plain" true
    (Classes.weaker Classes.Disjoint Classes.Plain);
  check_bool "distinct weaker than plain" true
    (Classes.weaker Classes.Distinct Classes.Plain);
  check_bool "plain not weaker than disjoint" false
    (Classes.weaker Classes.Plain Classes.Disjoint);
  check_bool "reflexive" true (Classes.weaker Classes.Distinct Classes.Distinct)

let test_admissible () =
  let base = Graph_gen.of_edges [ (1, 2) ] in
  let old_ext = Graph_gen.of_edges [ (2, 1) ] in
  let mixed_ext = Graph_gen.of_edges [ (2, 9) ] in
  let fresh_ext = Graph_gen.of_edges [ (8, 9) ] in
  check_bool "plain admits all" true
    (Classes.admissible Classes.Plain ~base ~extension:old_ext);
  check_bool "distinct rejects old" false
    (Classes.admissible Classes.Distinct ~base ~extension:old_ext);
  check_bool "distinct admits mixed" true
    (Classes.admissible Classes.Distinct ~base ~extension:mixed_ext);
  check_bool "disjoint rejects mixed" false
    (Classes.admissible Classes.Disjoint ~base ~extension:mixed_ext);
  check_bool "disjoint admits fresh" true
    (Classes.admissible Classes.Disjoint ~base ~extension:fresh_ext)

let test_check_pair () =
  let base = Graph_gen.of_edges [ (1, 2) ] in
  let ext = Graph_gen.of_edges [ (2, 3); (3, 1) ] in
  (* comp_tc: path 2->1 appears, so O(2,1) is retracted. *)
  match Classes.check_pair Classes.Plain Zoo.comp_tc ~base ~extension:ext with
  | None -> Alcotest.fail "expected violation"
  | Some v ->
    check_bool "missing is an O fact" true (Fact.rel v.Classes.missing = "O")

(* ------------------------------------------------------------------ *)
(* Enumerate *)

let test_subsets_count () =
  let n l k = Seq.length (Enumerate.subsets_up_to l k) in
  check_int "choose <=2 of 4" 11 (n [ 1; 2; 3; 4 ] 2);
  check_int "all of 3" 8 (n [ 1; 2; 3 ] 3);
  check_int "k beyond n" 8 (n [ 1; 2; 3 ] 9);
  check_int "empty list" 1 (n [] 2)

let test_subsets_order () =
  (* Smallest subsets first, so counterexample search prefers small J. *)
  let sizes =
    Enumerate.subsets_up_to [ 1; 2; 3 ] 3
    |> Seq.map List.length |> List.of_seq
  in
  check_bool "nondecreasing" true
    (List.sort compare sizes = sizes)

let test_instances_enumeration () =
  let sg = Schema.of_list [ ("V", 1) ] in
  let all =
    Enumerate.instances sg ~dom:(Enumerate.value_pool 3) ~max_facts:3
    |> List.of_seq
  in
  check_int "2^3 subsets" 8 (List.length all)

let test_extensions_admissible () =
  let base = Graph_gen.of_edges [ (1, 2) ] in
  let sg = Graph_gen.schema in
  let fresh = Enumerate.fresh_pool 2 in
  List.iter
    (fun kind ->
      Enumerate.extensions kind ~base ~schema:sg ~fresh ~max_size:2
      |> Seq.iter (fun ext ->
             check_bool "admissible" true
               (Classes.admissible kind ~base ~extension:ext);
             check_bool "nonempty" false (Instance.is_empty ext)))
    [ Classes.Plain; Classes.Distinct; Classes.Disjoint ]

(* ------------------------------------------------------------------ *)
(* Theorem 3.1 separations, bounded *)

let test_tc_monotone () =
  check_bool "tc in M (bounded)" false
    (violated (Checker.check_exhaustive ~bounds:small Classes.Plain Zoo.tc))

let test_comp_tc_placement () =
  (* Q_TC ∈ Mdisjoint \ Mdistinct (Theorem 3.1(1)). *)
  check_bool "not plain-monotone" true
    (violated (Checker.check_exhaustive ~bounds:small Classes.Plain Zoo.comp_tc));
  check_bool "not distinct-monotone" true
    (violated
       (Checker.check_exhaustive ~bounds:small Classes.Distinct Zoo.comp_tc));
  check_bool "disjoint-monotone (bounded)" false
    (violated
       (Checker.check_exhaustive ~bounds:small Classes.Disjoint Zoo.comp_tc))

let test_comp_tc_distinct_bound_collapse () =
  (* One domain-distinct fact cannot create a path between old vertices:
     Q_TC ∈ M¹distinct \ M²distinct. *)
  let b1 = { small with Checker.max_ext = 1 } in
  check_bool "holds at ext size 1" false
    (violated (Checker.check_exhaustive ~bounds:b1 Classes.Distinct Zoo.comp_tc));
  let b2 = { small with Checker.max_ext = 2 } in
  check_bool "violated at ext size 2" true
    (violated (Checker.check_exhaustive ~bounds:b2 Classes.Distinct Zoo.comp_tc))

let test_clique_ladder () =
  (* Q³clique ∈ M¹distinct \ M²distinct (Theorem 3.1(3), i = 1). *)
  let q = Zoo.q_clique 3 in
  let b1 = { small with Checker.max_ext = 1 } in
  check_bool "M1distinct holds" false
    (violated (Checker.check_exhaustive ~bounds:b1 Classes.Distinct q));
  let b2 = { small with Checker.max_ext = 2 } in
  check_bool "M2distinct violated" true
    (violated (Checker.check_exhaustive ~bounds:b2 Classes.Distinct q));
  (* Q³clique ∈ M²disjoint \ M³disjoint (Theorem 3.1(5), i = 2). *)
  let d2 = { small with Checker.fresh = 3; max_ext = 2 } in
  check_bool "M2disjoint holds" false
    (violated (Checker.check_exhaustive ~bounds:d2 Classes.Disjoint q));
  let d3 = { small with Checker.fresh = 3; max_ext = 3 } in
  check_bool "M3disjoint violated" true
    (violated (Checker.check_exhaustive ~bounds:d3 Classes.Disjoint q))

let test_star_ladder () =
  (* Q²star ∈ M¹disjoint \ M²disjoint (Theorem 3.1(4), i = 1). *)
  let q = Zoo.q_star 2 in
  let d1 = { small with Checker.fresh = 3; max_ext = 1 } in
  check_bool "M1disjoint holds" false
    (violated (Checker.check_exhaustive ~bounds:d1 Classes.Disjoint q));
  let d2 = { small with Checker.fresh = 3; max_ext = 2 } in
  check_bool "M2disjoint violated" true
    (violated (Checker.check_exhaustive ~bounds:d2 Classes.Disjoint q));
  (* Q²star ∉ M¹distinct (Theorem 3.1(6)): one edge from an old centre to a
     fresh vertex grows a 1-spoke star into a 2-spoke star. *)
  let b1 = { small with Checker.max_ext = 1 } in
  check_bool "M1distinct violated" true
    (violated (Checker.check_exhaustive ~bounds:b1 Classes.Distinct q))

let test_duplicate () =
  (* Q²duplicate ∈ M¹distinct \ M²disjoint (Theorem 3.1(7), i=1, j=2). *)
  let q = Zoo.q_duplicate 2 in
  let b1 = { small with Checker.max_ext = 1 } in
  check_bool "M1distinct holds" false
    (violated (Checker.check_exhaustive ~bounds:b1 Classes.Distinct q));
  let d2 = { small with Checker.max_ext = 2 } in
  check_bool "M2disjoint violated" true
    (violated (Checker.check_exhaustive ~bounds:d2 Classes.Disjoint q))

let test_triangles_not_disjoint_monotone () =
  (* The Mdisjoint ⊊ C separator (Theorem 3.1(1), third part). *)
  let q = Zoo.triangles_unless_two_disjoint in
  let base = Graph_gen.cycle 3 in
  let out =
    Checker.check_on_bases ~fresh:3 ~max_ext:3 Classes.Disjoint q [ base ]
  in
  check_bool "violated by a fresh disjoint triangle" true (violated out)

let test_winmove_placement () =
  (* Win-move ∈ Mdisjoint \ Mdistinct (Zinn et al. / Section 4). *)
  let q = Zoo.winmove in
  check_bool "not distinct-monotone" true
    (violated
       (Checker.check_exhaustive
          ~bounds:{ small with Checker.max_base = 2; max_ext = 1 }
          Classes.Distinct q));
  check_bool "disjoint-monotone (bounded)" false
    (violated
       (Checker.check_exhaustive
          ~bounds:{ small with Checker.max_base = 2; max_ext = 2 }
          Classes.Disjoint q))

let test_placement_summary () =
  let p = Checker.place ~bounds:small Zoo.tc in
  Alcotest.(check string) "tc strongest" "M" (Checker.strongest p);
  let p = Checker.place ~bounds:small Zoo.comp_tc in
  Alcotest.(check string) "comp-tc strongest" "Mdisjoint" (Checker.strongest p)

let test_random_checker_agrees () =
  check_bool "random finds comp-tc distinct violation" true
    (violated
       (Checker.check_random ~trials:3000
          ~bounds:{ small with Checker.max_ext = 2 }
          Classes.Distinct Zoo.comp_tc));
  check_bool "random finds no tc violation" false
    (violated (Checker.check_random ~trials:500 Classes.Plain Zoo.tc))

(* ------------------------------------------------------------------ *)
(* Lemma 3.2: E = Mdistinct, Hinj = M *)

let test_extensions_tc () =
  check_bool "tc preserved under extensions" false
    (violated (Relate.check_extensions_exhaustive ~bounds:small Zoo.tc))

let test_extensions_comp_tc () =
  check_bool "comp-tc not preserved under extensions" true
    (violated (Relate.check_extensions_exhaustive ~bounds:small Zoo.comp_tc))

let test_extensions_agrees_with_distinct () =
  (* E = Mdistinct: the two checkers agree on a query sample. *)
  List.iter
    (fun q ->
      let e = violated (Relate.check_extensions_exhaustive ~bounds:small q) in
      let d =
        violated (Checker.check_exhaustive ~bounds:small Classes.Distinct q)
      in
      check_bool ("agrees on " ^ q.Query.name) e d)
    [ Zoo.tc; Zoo.comp_tc; Zoo.q_clique 3; Zoo.q_star 2 ]

let tiny = { Checker.dom_size = 2; fresh = 1; max_base = 2; max_ext = 2 }

let test_hom_tc () =
  check_bool "tc preserved under injective homs" false
    (violated (Relate.check_hom_exhaustive ~bounds:tiny ~injective:true Zoo.tc));
  check_bool "tc preserved under all homs (Datalog ⊆ H)" false
    (violated (Relate.check_hom_exhaustive ~bounds:tiny ~injective:false Zoo.tc))

let test_hom_comp_tc () =
  check_bool "comp-tc not preserved under injective homs" true
    (violated
       (Relate.check_hom_exhaustive ~bounds:tiny ~injective:true Zoo.comp_tc))

let test_hom_ineq_separates () =
  (* O(x,y) :- E(x,y), x != y is in M = Hinj but not in H: a collapsing
     homomorphism merges the two endpoints. *)
  let q =
    Query.make ~name:"irreflexive-edges" ~input:Graph_gen.schema
      ~output:(Schema.of_list [ ("O", 2) ])
      (fun i ->
        Instance.fold
          (fun f acc ->
            if
              Fact.rel f = "E"
              && not (Value.equal (Fact.arg f 0) (Fact.arg f 1))
            then Instance.add (Fact.make "O" (Fact.args f)) acc
            else acc)
          i Instance.empty)
  in
  check_bool "in Hinj" false
    (violated (Relate.check_hom_exhaustive ~bounds:tiny ~injective:true q));
  check_bool "not in H" true
    (violated (Relate.check_hom_exhaustive ~bounds:tiny ~injective:false q));
  check_bool "in M" false
    (violated (Checker.check_exhaustive ~bounds:small Classes.Plain q))

(* ------------------------------------------------------------------ *)
(* Zoo internals *)

let test_has_clique () =
  check_bool "triangle" true (Zoo.has_clique (Graph_gen.cycle 3) 3);
  check_bool "path is not" false (Zoo.has_clique (Graph_gen.path 3) 3);
  check_bool "full clique 4" true (Zoo.has_clique (Graph_gen.clique 4) 4);
  check_bool "cycle 4 has no triangle" false
    (Zoo.has_clique (Graph_gen.cycle 4) 3);
  check_bool "undirected reading" true
    (Zoo.has_clique (Graph_gen.of_edges [ (1, 2); (3, 1); (2, 3) ]) 3)

let test_has_star () =
  check_bool "star 3" true (Zoo.has_star (Graph_gen.star 3) 3);
  check_bool "star 3 is not star 4" false (Zoo.has_star (Graph_gen.star 3) 4);
  check_bool "in-edges count as spokes" true
    (Zoo.has_star (Graph_gen.of_edges [ (1, 0); (2, 0); (3, 0) ]) 3);
  check_bool "self loop no spoke" false
    (Zoo.has_star (Graph_gen.of_edges [ (0, 0) ]) 1)

let test_triangles () =
  let t = Zoo.triangles (Graph_gen.cycle 3) in
  check_int "three rotations" 3 (Instance.cardinal t);
  check_bool "no triangle in path" true
    (Instance.is_empty (Zoo.triangles (Graph_gen.path 4)))

let test_winmove_query () =
  let i = Instance.of_list [ Fact.make "Move" [ Value.int 1; Value.int 2 ] ] in
  let out = Query.apply Zoo.winmove i in
  check_bool "1 wins" true
    (Instance.mem (Fact.make "Win" [ Value.int 1 ]) out);
  check_int "only 1 wins" 1 (Instance.cardinal out)

let test_winmove_draw () =
  let i = Graph_gen.game ~seed:0 ~nodes:0 ~edges:0 in
  check_bool "empty game, no winners" true
    (Instance.is_empty (Query.apply Zoo.winmove i));
  let cyc =
    Instance.of_list
      [
        Fact.make "Move" [ Value.int 1; Value.int 2 ];
        Fact.make "Move" [ Value.int 2; Value.int 1 ];
      ]
  in
  check_bool "pure cycle: draws are not wins" true
    (Instance.is_empty (Query.apply Zoo.winmove cyc))

let test_winmove_matches_engine () =
  (* The direct alternating fixpoint agrees with the Datalog well-founded
     engine on random games. *)
  let open Datalog in
  let p = Parser.parse_program Zoo.winmove_program in
  for seed = 0 to 14 do
    let g = Graph_gen.game ~seed ~nodes:6 ~edges:9 in
    let direct = Query.apply Zoo.winmove g in
    let engine =
      Instance.restrict_rels (Wellfounded.eval p g).Wellfounded.true_facts
        [ "Win" ]
    in
    check_bool (Printf.sprintf "seed %d" seed) true
      (Instance.equal direct engine)
  done

let test_tc_matches_engine () =
  let open Datalog in
  let p = Parser.parse_program Zoo.tc_program in
  for seed = 0 to 9 do
    let g = Graph_gen.erdos_renyi ~seed ~nodes:6 ~edges:10 in
    let direct = Query.apply Zoo.tc g in
    let engine = Instance.restrict_rels (Eval.seminaive p g) [ "T" ] in
    check_bool (Printf.sprintf "seed %d" seed) true
      (Instance.equal direct engine)
  done

let test_comp_tc_matches_engine () =
  let open Datalog in
  let p = Program.parse Zoo.comp_tc_program in
  for seed = 0 to 9 do
    let g = Graph_gen.erdos_renyi ~seed ~nodes:5 ~edges:7 in
    let direct = Query.apply Zoo.comp_tc g in
    let engine = Program.run p g in
    check_bool (Printf.sprintf "seed %d" seed) true
      (Instance.equal direct engine)
  done

let test_graph_gen_shapes () =
  check_int "path edges" 4 (Instance.cardinal (Graph_gen.path 4));
  check_int "cycle edges" 5 (Instance.cardinal (Graph_gen.cycle 5));
  check_int "clique edges" 12 (Instance.cardinal (Graph_gen.clique 4));
  check_int "star edges" 3 (Instance.cardinal (Graph_gen.star 3));
  let a = Graph_gen.cycle 3 and b = Graph_gen.cycle 3 in
  let u = Graph_gen.disjoint_union a b in
  check_int "disjoint union keeps all edges" 6 (Instance.cardinal u);
  check_bool "parts disjoint" true
    (Instance.is_domain_disjoint_from (Instance.diff u a) a)

(* ------------------------------------------------------------------ *)
(* Shrinking and ladders *)

let test_shrink_minimizes () =
  (* Start from a deliberately fat violating pair for comp-tc. *)
  let base = Graph_gen.of_edges [ (1, 2); (5, 6); (6, 5) ] in
  let extension = Graph_gen.of_edges [ (2, 9); (9, 1); (9, 9) ] in
  match
    Classes.check_pair Classes.Distinct Zoo.comp_tc ~base ~extension
  with
  | None -> Alcotest.fail "expected a violation to start from"
  | Some v ->
    let v' = Shrink.shrink Zoo.comp_tc v in
    check_bool "still a violation" true
      (Classes.check_pair v'.Classes.kind Zoo.comp_tc ~base:v'.Classes.base
         ~extension:v'.Classes.extension
      <> None);
    check_bool "minimal" true (Shrink.is_minimal Zoo.comp_tc v');
    check_bool "base shrank" true
      (Instance.cardinal v'.Classes.base < Instance.cardinal base);
    (* The canonical certificate: one edge, and the two-edge detour
       through the new vertex. *)
    check_int "one base fact" 1 (Instance.cardinal v'.Classes.base);
    check_int "two extension facts" 2 (Instance.cardinal v'.Classes.extension)

let test_ladder_star () =
  (* Q²star: holds at disjoint bound 1, violated from 2 on. *)
  let outcomes =
    Checker.ladder ~fresh:3
      ~bases:[ Graph_gen.star 1; Graph_gen.path 1 ]
      Classes.Disjoint ~max_i:3 (Zoo.q_star 2)
  in
  match List.map violated outcomes with
  | [ false; true; true ] -> ()
  | l ->
    Alcotest.fail
      (Printf.sprintf "unexpected ladder: %s"
         (String.concat "," (List.map string_of_bool l)))

let test_ladder_monotone_in_i () =
  (* Once violated, violated for all larger bounds (inclusion of the
     bounded classes). *)
  let outcomes =
    Checker.ladder ~bounds:small Classes.Distinct ~max_i:3 Zoo.comp_tc
  in
  let flags = List.map violated outcomes in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> ((not a) || b) && nondecreasing rest
    | _ -> true
  in
  check_bool "monotone ladder" true (nondecreasing flags)

(* ------------------------------------------------------------------ *)
(* Datalog encodings of the separating queries *)

let test_clique_program_matches_query () =
  let p = Datalog.Program.parse Zoo.q_clique3_program in
  let q = Zoo.q_clique 3 in
  for seed = 0 to 19 do
    let g = Graph_gen.erdos_renyi ~seed ~nodes:5 ~edges:7 in
    check_bool
      (Printf.sprintf "seed %d" seed)
      true
      (Instance.equal (Datalog.Program.run p g) (Query.apply q g))
  done

let test_star_program_matches_query () =
  let p = Datalog.Program.parse Zoo.q_star2_program in
  let q = Zoo.q_star 2 in
  for seed = 0 to 19 do
    let g = Graph_gen.erdos_renyi ~seed ~nodes:5 ~edges:6 in
    check_bool
      (Printf.sprintf "seed %d" seed)
      true
      (Instance.equal (Datalog.Program.run p g) (Query.apply q g))
  done;
  (* Self loops are not spokes. *)
  let g = Graph_gen.of_edges [ (0, 0); (0, 1) ] in
  check_bool "self loop" true
    (Instance.equal (Datalog.Program.run p g) (Query.apply q g))

let test_separator_programs_not_semicon () =
  (* These queries are outside Mdisjoint, so Theorem 5.3 says no
     semicon-Datalog¬ program can express them; the natural encodings are
     indeed not semi-connected and their negation is a blocking point of
     order. *)
  List.iter
    (fun src ->
      let rules =
        Datalog.Adom.augment (Datalog.Parser.parse_program src)
      in
      check_bool "stratified but not semicon" true
        (Datalog.Fragment.classify rules
        = Datalog.Fragment.Stratified);
      match
        Datalog.Points_of_order.max_severity
          (Datalog.Points_of_order.analyze rules)
      with
      | Some Datalog.Points_of_order.Blocking_negation -> ()
      | _ -> Alcotest.fail "expected a blocking point of order")
    [ Zoo.q_clique3_program; Zoo.q_star2_program ]

(* ------------------------------------------------------------------ *)
(* Games: retrograde analysis vs win-move *)

let move a b = Fact.make "Move" [ Value.int a; Value.int b ]

let test_games_statuses () =
  (* 1 -> 2 -> 3 (dead end), 4 <-> 5, 6 -> 4. *)
  let g = Instance.of_list [ move 1 2; move 2 3; move 4 5; move 5 4; move 6 4 ] in
  let s = Games.solve g in
  let expect x st =
    check_bool
      (Printf.sprintf "%d is %s" x (Games.status_to_string st))
      true
      (Value.Map.find (Value.int x) s = st)
  in
  expect 3 Games.Lost;
  expect 2 Games.Won;
  expect 1 Games.Lost;
  expect 4 Games.Drawn;
  expect 5 Games.Drawn;
  expect 6 Games.Drawn

let test_games_match_winmove () =
  for seed = 0 to 19 do
    let g = Graph_gen.game ~seed ~nodes:7 ~edges:11 in
    check_bool
      (Printf.sprintf "winners agree (seed %d)" seed)
      true
      (Instance.equal
         (Query.apply Games.winners_query g)
         (Query.apply Zoo.winmove g));
    check_bool
      (Printf.sprintf "wf agreement (seed %d)" seed)
      true
      (Games.agrees_with_wellfounded g)
  done

let test_games_partition () =
  let g = Graph_gen.game ~seed:3 ~nodes:6 ~edges:9 in
  let won = Games.positions Games.Won g in
  let lost = Games.positions Games.Lost g in
  let drawn = Games.positions Games.Drawn g in
  check_bool "disjoint" true
    (Value.Set.is_empty (Value.Set.inter won lost)
    && Value.Set.is_empty (Value.Set.inter won drawn)
    && Value.Set.is_empty (Value.Set.inter lost drawn));
  check_bool "cover" true
    (Value.Set.equal
       (Value.Set.union won (Value.Set.union lost drawn))
       (Instance.adom g))

let test_games_losers_query () =
  let g = Instance.of_list [ move 1 2 ] in
  let out = Query.apply Games.losers_query g in
  check_bool "2 lost" true
    (Instance.mem (Fact.make "Lose" [ Value.int 2 ]) out);
  check_bool "1 not lost" false
    (Instance.mem (Fact.make "Lose" [ Value.int 1 ]) out)

(* ------------------------------------------------------------------ *)
(* Cross-probe cache and parallel-scan determinism: verdicts, pair
   tallies and (shrunken) certificates must be byte-identical whether
   Q(base) is cached across a base's probes or recomputed per pair, and
   independently of the worker count. *)

let violation_equal (a : Classes.violation) (b : Classes.violation) =
  a.Classes.kind = b.Classes.kind
  && a.Classes.bound = b.Classes.bound
  && Instance.equal a.Classes.base b.Classes.base
  && Instance.equal a.Classes.extension b.Classes.extension
  && Fact.equal a.Classes.missing b.Classes.missing

let outcome_equal a b =
  match (a, b) with
  | Checker.No_violation { pairs = p }, Checker.No_violation { pairs = p' } ->
    p = p'
  | Checker.Violated v, Checker.Violated v' -> violation_equal v v'
  | _ -> false

let scan_configs =
  [
    (1, true, true);
    (1, false, true);
    (2, true, true);
    (2, false, true);
    (4, true, true);
    (4, false, true);
    (1, true, false);
    (2, true, false);
    (4, true, false);
  ]

let check_scan_invariant name run =
  let reference = run ~jobs:1 ~cache:true ~ivm:true in
  List.iter
    (fun (jobs, cache, ivm) ->
      let o = run ~jobs ~cache ~ivm in
      check_bool
        (Printf.sprintf "%s: jobs=%d cache=%b ivm=%b" name jobs cache ivm)
        true
        (outcome_equal reference o);
      match (reference, o) with
      | Checker.Violated v, Checker.Violated v' ->
        check_bool
          (Printf.sprintf "%s: shrunken certificate jobs=%d cache=%b ivm=%b"
             name jobs cache ivm)
          true
          (violation_equal
             (Shrink.shrink Zoo.comp_tc v)
             (Shrink.shrink Zoo.comp_tc v'))
      | _ -> ())
    scan_configs

let test_scan_cache_jobs_violating () =
  check_scan_invariant "comp-tc distinct" (fun ~jobs ~cache ~ivm ->
      Checker.check_exhaustive ~bounds:small ~jobs ~cache ~ivm
        Classes.Distinct Zoo.comp_tc)

let test_scan_cache_jobs_clean () =
  check_scan_invariant "tc plain" (fun ~jobs ~cache ~ivm ->
      Checker.check_exhaustive ~bounds:small ~jobs ~cache ~ivm Classes.Plain
        Zoo.tc)

let test_scan_cache_jobs_random () =
  check_scan_invariant "comp-tc random" (fun ~jobs ~cache ~ivm ->
      Checker.check_random ~seed:23 ~trials:800
        ~bounds:{ small with Checker.max_ext = 2 }
        ~jobs ~cache ~ivm Classes.Distinct Zoo.comp_tc);
  check_scan_invariant "tc random clean" (fun ~jobs ~cache ~ivm ->
      Checker.check_random ~seed:23 ~trials:300 ~jobs ~cache ~ivm
        Classes.Plain Zoo.tc)

(* ------------------------------------------------------------------ *)
(* Incremental-route determinism: a maintain-backed query
   ({!Datalog.Program.query} installs the {!Datalog.Ivm} route; no
   witness) must give byte-identical verdicts, certificates, and stable
   metric rows with the route on or off, across cache and jobs — only
   the ivm_* rows themselves may differ, and when the route is live they
   must prove it actually fired. *)

(* The scan's verdict rows — probes, pairs, violations, certificate
   sizes — must not move with any knob; [monotone.cache_hits] and the
   ivm_* rows are the knobs' own meters and are pinned separately. The
   engine's [eval.*] work counters legitimately change with [cache] and
   [ivm] (that is the point of the routes); they must still be identical
   across [jobs] at fixed knobs. *)
let monotone_core_rows c =
  Observe.Metrics.render_stable c
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         String.starts_with ~prefix:"monotone." l
         && (not (String.starts_with ~prefix:"monotone.cache_hits" l))
         && not (String.starts_with ~prefix:"monotone.ivm_hits" l))
  |> String.concat "\n"

let root_count name =
  match
    List.find_opt
      (fun r -> r.Observe.Metrics.name = name)
      (Observe.Metrics.snapshot Observe.Metrics.root)
  with
  | Some r -> r.Observe.Metrics.count
  | None -> 0

let check_ivm_scan_invariant name kind q =
  check_bool (name ^ ": route is ivm") true (Query.route q = Query.Ivm);
  check_bool (name ^ ": knob off routes to eval") true
    (Query.route ~ivm:false q = Query.Eval);
  let run ~jobs ~cache ~ivm =
    Observe.Metrics.reset Observe.Metrics.root;
    let o = Checker.check_exhaustive ~bounds:small ~jobs ~cache ~ivm kind q in
    ( o,
      Observe.Metrics.render_stable Observe.Metrics.root,
      monotone_core_rows Observe.Metrics.root,
      root_count "monotone.ivm_hits",
      root_count "monotone.cache_hits" )
  in
  let knob_refs =
    List.map
      (fun (cache, ivm) -> ((cache, ivm), run ~jobs:1 ~cache ~ivm))
      [ (true, true); (false, true); (true, false) ]
  in
  let ref_o, _, ref_core, ref_hits, ref_cache_hits =
    List.assoc (true, true) knob_refs
  in
  check_bool (name ^ ": incremental route fired") true (ref_hits > 0);
  List.iter
    (fun (jobs, cache, ivm) ->
      let o, rows, core, hits, cache_hits = run ~jobs ~cache ~ivm in
      let _, knob_rows, _, _, _ = List.assoc (cache, ivm) knob_refs in
      check_bool
        (Printf.sprintf "%s: verdict jobs=%d cache=%b ivm=%b" name jobs cache
           ivm)
        true (outcome_equal ref_o o);
      check_bool
        (Printf.sprintf "%s: stable rows at jobs=%d = jobs=1 (cache=%b \
                         ivm=%b)"
           name jobs cache ivm)
        true
        (String.equal knob_rows rows);
      check_bool
        (Printf.sprintf "%s: verdict rows jobs=%d cache=%b ivm=%b" name jobs
           cache ivm)
        true
        (String.equal ref_core core);
      if cache then
        check_int
          (Printf.sprintf "%s: cache hits jobs=%d ivm=%b" name jobs ivm)
          ref_cache_hits cache_hits;
      check_int
        (Printf.sprintf "%s: ivm hits jobs=%d cache=%b ivm=%b" name jobs
           cache ivm)
        (if cache && ivm then ref_hits else 0)
        hits)
    scan_configs

let test_ivm_scan_violating () =
  check_ivm_scan_invariant "comp-tc-prog distinct" Classes.Distinct
    (Datalog.Program.query ~name:"comp-tc-prog"
       (Datalog.Program.parse Zoo.comp_tc_program))

let test_ivm_scan_clean () =
  check_ivm_scan_invariant "tc-prog plain" Classes.Plain
    (Datalog.Program.query ~name:"tc-prog"
       (Datalog.Program.parse ~outputs:[ "T" ] Zoo.tc_program))

(* ------------------------------------------------------------------ *)
(* wILOG zoo (Section 5.2 / Theorem 5.4) *)

let test_wilog_tagged_edges () =
  let i = Graph_gen.of_edges [ (1, 2); (3, 4) ] in
  let out = Query.apply Wilog_zoo.tagged_edges_query i in
  check_int "identity modulo rel name" 2 (Instance.cardinal out);
  check_bool "no invented values leak" true
    (Instance.for_all (fun f -> not (Fact.is_invented f)) out)

let test_wilog_sinks_of_sources () =
  (* 1 -> 2: HasOut = {1}; sinks (no out-edge) = {2}. *)
  let i = Graph_gen.of_edges [ (1, 2) ] in
  let out = Query.apply Wilog_zoo.sinks_of_sources_query i in
  check_bool "O(1,2)" true
    (Instance.equal out
       (Instance.of_list [ Fact.make "O" [ Value.int 1; Value.int 2 ] ]))

let test_wilog_fragments () =
  let open Datalog in
  let tagged = Parser.parse_program Wilog_zoo.tagged_edges in
  let sinks = Adom.augment (Parser.parse_program Wilog_zoo.sinks_of_sources) in
  check_bool "tagged is SP-wILOG" true (Ilog.is_sp_wilog tagged);
  check_bool "sinks is not SP-wILOG" false (Ilog.is_sp_wilog sinks);
  check_bool "sinks is semicon-wILOG" true (Ilog.is_semi_connected_wilog sinks);
  check_bool "tagged weakly safe" true
    (Ilog.is_weakly_safe ~outputs:[ "O" ] tagged);
  check_bool "leak not weakly safe" false
    (Ilog.is_weakly_safe ~outputs:[ "O" ]
       (Parser.parse_program Wilog_zoo.unsafe_leak))

let test_wilog_query_rejections () =
  let open Datalog in
  check_bool "unsafe leak rejected" true
    (Result.is_error
       (Ilog.query ~name:"leak" ~outputs:[ "O" ]
          (Parser.parse_program Wilog_zoo.unsafe_leak)));
  check_bool "divergent counter has no O" true
    (Result.is_error
       (Ilog.query ~name:"ctr" ~outputs:[ "O" ]
          (Parser.parse_program Wilog_zoo.divergent_counter)))

let test_wilog_semicon_in_mdisjoint () =
  (* Theorem 5.4 direction: semicon-wILOG¬ ⊆ Mdisjoint, bounded check. *)
  let q = Wilog_zoo.sinks_of_sources_query in
  check_bool "not in Mdistinct" true
    (violated
       (Checker.check_exhaustive ~bounds:{ small with Checker.max_ext = 1 }
          Classes.Distinct q));
  check_bool "in Mdisjoint (bounded)" false
    (violated (Checker.check_exhaustive ~bounds:small Classes.Disjoint q))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 0 10 in
    let* edges = list_size (return n) (pair (int_range 0 5) (int_range 0 5)) in
    return (Graph_gen.of_edges edges))

let prop_induced_iff_distinct =
  QCheck2.Test.make ~name:"E=Mdistinct translation (Lemma 3.2)" ~count:300
    (QCheck2.Gen.pair gen_graph gen_graph) (fun (whole, sub) ->
      let part = Instance.inter whole sub in
      Relate.induced_iff_distinct ~whole ~part)

let prop_disjoint_union_preserves_winmove =
  QCheck2.Test.make ~name:"win-move disjoint-monotone on random pairs"
    ~count:100 (QCheck2.Gen.pair gen_graph gen_graph) (fun (a, b) ->
      let rename i =
        Instance.fold
          (fun f acc -> Instance.add (Fact.make "Move" (Fact.args f)) acc)
          i Instance.empty
      in
      let shift i =
        Instance.map_values
          (function Value.Int x -> Value.Int (x + 1000) | v -> v)
          i
      in
      let a = rename a and b = shift (rename b) in
      let q = Zoo.winmove in
      Instance.subset (Query.apply q a) (Query.apply q (Instance.union a b)))

let prop_tc_monotone_random =
  QCheck2.Test.make ~name:"tc monotone on random pairs" ~count:200
    (QCheck2.Gen.pair gen_graph gen_graph) (fun (i, j) ->
      Instance.subset (Query.apply Zoo.tc i)
        (Query.apply Zoo.tc (Instance.union i j)))

let prop_comp_tc_disjoint_monotone_random =
  QCheck2.Test.make ~name:"comp-tc disjoint-monotone on random pairs"
    ~count:200 gen_graph (fun i ->
      let j =
        Instance.map_values
          (function Value.Int x -> Value.Int (x + 500) | v -> v)
          (Graph_gen.cycle 3)
      in
      Instance.subset (Query.apply Zoo.comp_tc i)
        (Query.apply Zoo.comp_tc (Instance.union i j)))

let prop_shrink_locally_minimal =
  QCheck2.Test.make ~name:"every Shrink certificate is locally minimal"
    ~count:150
    (QCheck2.Gen.pair gen_graph gen_graph)
    (fun (base, ext) ->
      (* A domain-disjoint copy of [ext] is admissible for every kind. *)
      let shifted =
        Instance.map_values
          (function Value.Int x -> Value.Int (x + 100) | v -> v)
          ext
      in
      let minimal_after_shrink kind extension =
        match Classes.check_pair kind Zoo.comp_tc ~base ~extension with
        | None -> true (* vacuous: not a violation to begin with *)
        | Some v ->
          let v' = Shrink.shrink Zoo.comp_tc v in
          Shrink.is_minimal Zoo.comp_tc v'
          && Classes.check_pair v'.Classes.kind Zoo.comp_tc
               ~base:v'.Classes.base ~extension:v'.Classes.extension
             <> None
      in
      minimal_after_shrink Classes.Plain (Instance.diff ext base)
      && minimal_after_shrink Classes.Distinct shifted
      && minimal_after_shrink Classes.Disjoint shifted)

(* The staged-witness contract (see {!Relational.Query.stage}): for any
   base, extension and expected set, the witness fast path must return
   exactly the fact the evaluating route returns — the least fact of
   [expected] missing from [Q(base ∪ ext)]. Exercised for every zoo
   query that installs a witness, including expected sets taken from an
   unrelated graph (values that resolve to no vertex). *)
let prop_witness_contract =
  let rename_moves i =
    Instance.fold
      (fun f acc -> Instance.add (Fact.make "Move" (Fact.args f)) acc)
      i Instance.empty
  in
  let cases =
    [
      (Zoo.tc, Fun.id);
      (Zoo.comp_tc, Fun.id);
      (Zoo.triangles_unless_two_disjoint, Fun.id);
      (Zoo.winmove, rename_moves);
    ]
  in
  QCheck2.Test.make ~name:"staged witnesses match the evaluator route"
    ~count:200
    (QCheck2.Gen.triple gen_graph gen_graph gen_graph)
    (fun (b, e, x) ->
      List.for_all
        (fun (q, conv) ->
          let base = conv b and ext = conv e in
          let agree expected =
            let via_witness =
              Query.stage q ~base ~expected (Query.delta_of_instance ext)
            in
            let via_eval =
              Instance.first_missing expected
                (Query.apply q (Instance.union base ext))
            in
            match (via_witness, via_eval) with
            | None, None -> true
            | Some f, Some g -> Fact.equal f g
            | _ -> false
          in
          agree (Query.apply q base) && agree (Query.apply q (conv x)))
        cases)

(* Random programs over binary predicates: edb {A, B}, idb {P, Q}, all
   arity 2, range-restricted by construction. [with_neg] adds negated
   edb atoms (semi-positive). *)
let gen_program ~with_neg =
  let open QCheck2.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let gen_rule =
    let* npos = int_range 1 3 in
    let* pos =
      list_size (return npos)
        (let* p = oneofl [ "A"; "B"; "P"; "Q" ] in
         let* t1 = oneofl vars in
         let* t2 = oneofl vars in
         return (Datalog.Ast.atom p [ Datalog.Ast.Var t1; Datalog.Ast.Var t2 ]))
    in
    let pos_vars = List.concat_map Datalog.Ast.vars_of_atom pos in
    let pvar = oneofl pos_vars in
    let* h1 = pvar in
    let* h2 = pvar in
    let* hp = oneofl [ "P"; "Q" ] in
    let* neg =
      if not with_neg then return []
      else
        list_size (int_range 0 2)
          (let* p = oneofl [ "A"; "B" ] in
           let* t1 = pvar in
           let* t2 = pvar in
           return
             (Datalog.Ast.atom p [ Datalog.Ast.Var t1; Datalog.Ast.Var t2 ]))
    in
    let* ineq =
      list_size (int_range 0 1)
        (let* t1 = pvar in
         let* t2 = pvar in
         return (Datalog.Ast.Var t1, Datalog.Ast.Var t2))
    in
    return
      {
        Datalog.Ast.head =
          Datalog.Ast.atom hp [ Datalog.Ast.Var h1; Datalog.Ast.Var h2 ];
        pos;
        neg;
        ineq;
      }
  in
  list_size (int_range 1 4) gen_rule

let program_query rules =
  let heads =
    List.map (fun (r : Datalog.Ast.rule) -> r.Datalog.Ast.head.Datalog.Ast.pred) rules
    |> List.sort_uniq String.compare
  in
  Datalog.Program.query ~name:"random"
    (Datalog.Program.make ~outputs:heads rules)

let prop_positive_programs_monotone =
  QCheck2.Test.make ~name:"Datalog(!=) subset of M (random programs)"
    ~count:80 (gen_program ~with_neg:false) (fun rules ->
      match program_query rules with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | q ->
        not
          (violated
             (Checker.check_random ~trials:60
                ~bounds:{ small with Checker.max_base = 3 }
                Classes.Plain q)))

let prop_sp_programs_distinct_monotone =
  QCheck2.Test.make ~name:"SP-Datalog subset of Mdistinct (random programs)"
    ~count:80 (gen_program ~with_neg:true) (fun rules ->
      match program_query rules with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | q ->
        Datalog.Fragment.is_semi_positive rules
        && not
             (violated
                (Checker.check_random ~trials:60
                   ~bounds:{ small with Checker.max_base = 3 }
                   Classes.Distinct q)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_positive_programs_monotone;
      prop_sp_programs_distinct_monotone;
      prop_induced_iff_distinct;
      prop_disjoint_union_preserves_winmove;
      prop_tc_monotone_random;
      prop_comp_tc_disjoint_monotone_random;
      prop_shrink_locally_minimal;
      prop_witness_contract;
    ]

let () =
  Alcotest.run "monotone"
    [
      ( "classes",
        [
          Alcotest.test_case "weaker" `Quick test_kind_weaker;
          Alcotest.test_case "admissible" `Quick test_admissible;
          Alcotest.test_case "check_pair" `Quick test_check_pair;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "subset count" `Quick test_subsets_count;
          Alcotest.test_case "subset order" `Quick test_subsets_order;
          Alcotest.test_case "instances" `Quick test_instances_enumeration;
          Alcotest.test_case "extensions admissible" `Quick
            test_extensions_admissible;
        ] );
      ( "theorem-3.1",
        [
          Alcotest.test_case "tc in M" `Slow test_tc_monotone;
          Alcotest.test_case "comp-tc placement" `Slow test_comp_tc_placement;
          Alcotest.test_case "comp-tc bounded ladder" `Slow
            test_comp_tc_distinct_bound_collapse;
          Alcotest.test_case "clique ladder" `Slow test_clique_ladder;
          Alcotest.test_case "star ladder" `Slow test_star_ladder;
          Alcotest.test_case "duplicate" `Slow test_duplicate;
          Alcotest.test_case "triangles separator" `Quick
            test_triangles_not_disjoint_monotone;
          Alcotest.test_case "winmove placement" `Slow test_winmove_placement;
          Alcotest.test_case "placement summary" `Slow test_placement_summary;
          Alcotest.test_case "random checker" `Slow test_random_checker_agrees;
        ] );
      ( "lemma-3.2",
        [
          Alcotest.test_case "tc under extensions" `Slow test_extensions_tc;
          Alcotest.test_case "comp-tc under extensions" `Slow
            test_extensions_comp_tc;
          Alcotest.test_case "E = Mdistinct agreement" `Slow
            test_extensions_agrees_with_distinct;
          Alcotest.test_case "tc under homs" `Slow test_hom_tc;
          Alcotest.test_case "comp-tc under inj homs" `Slow test_hom_comp_tc;
          Alcotest.test_case "ineq separates H from Hinj" `Slow
            test_hom_ineq_separates;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "has_clique" `Quick test_has_clique;
          Alcotest.test_case "has_star" `Quick test_has_star;
          Alcotest.test_case "triangles" `Quick test_triangles;
          Alcotest.test_case "winmove basic" `Quick test_winmove_query;
          Alcotest.test_case "winmove draws" `Quick test_winmove_draw;
          Alcotest.test_case "winmove vs engine" `Quick
            test_winmove_matches_engine;
          Alcotest.test_case "tc vs engine" `Quick test_tc_matches_engine;
          Alcotest.test_case "comp-tc vs engine" `Quick
            test_comp_tc_matches_engine;
          Alcotest.test_case "generators" `Quick test_graph_gen_shapes;
        ] );
      ( "cache-jobs",
        [
          Alcotest.test_case "exhaustive violating scan" `Slow
            test_scan_cache_jobs_violating;
          Alcotest.test_case "exhaustive clean scan" `Slow
            test_scan_cache_jobs_clean;
          Alcotest.test_case "random scan" `Slow test_scan_cache_jobs_random;
        ] );
      ( "ivm-route",
        [
          Alcotest.test_case "violating scan" `Slow test_ivm_scan_violating;
          Alcotest.test_case "clean scan" `Slow test_ivm_scan_clean;
        ] );
      ( "shrink-ladder",
        [
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "star ladder" `Quick test_ladder_star;
          Alcotest.test_case "ladder monotone" `Slow test_ladder_monotone_in_i;
        ] );
      ( "datalog-encodings",
        [
          Alcotest.test_case "clique program" `Quick
            test_clique_program_matches_query;
          Alcotest.test_case "star program" `Quick
            test_star_program_matches_query;
          Alcotest.test_case "not semicon" `Quick
            test_separator_programs_not_semicon;
        ] );
      ( "games",
        [
          Alcotest.test_case "statuses" `Quick test_games_statuses;
          Alcotest.test_case "matches win-move" `Quick test_games_match_winmove;
          Alcotest.test_case "partition" `Quick test_games_partition;
          Alcotest.test_case "losers" `Quick test_games_losers_query;
        ] );
      ( "wilog",
        [
          Alcotest.test_case "tagged edges" `Quick test_wilog_tagged_edges;
          Alcotest.test_case "sinks of sources" `Quick
            test_wilog_sinks_of_sources;
          Alcotest.test_case "fragments" `Quick test_wilog_fragments;
          Alcotest.test_case "rejections" `Quick test_wilog_query_rejections;
          Alcotest.test_case "semicon in Mdisjoint" `Slow
            test_wilog_semicon_in_mdisjoint;
        ] );
      ("properties", qcheck_cases);
    ]
