(* The trajectory test wall: histogram quantiles and the time-series
   recorder.

   Pinned claims:
   1. Histogram bucket keys are a deterministic, monotone, exactly
      mergeable encoding: key round-trips, representatives bound the
      value from below within one sub-bucket of relative error, and
      quantiles of a merged collector are byte-identical to the
      sequential ones.
   2. Series trajectories are byte-identical across jobs 1/2/4 — on a
      held scan, a witness (violated) scan, and a faulty sweep — and
      downsampling commutes with merging.
   3. Bench wall clocks survive export → report ingestion bit-exactly;
      non-finite values cannot enter a report (printer emits null,
      loader rejects crafted infinities).
   4. The calm-series/v1 validator accepts the exporter's output and
      rejects tampered documents; Report.diff flags the seeded
      regression fixture and passes the committed trajectory. *)

open Relational
open Monotone
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_str name expected actual = Alcotest.(check string) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Histogram bucket keys *)

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun f -> Float.abs f +. 1e-12) float;
        map float_of_int (int_range (-1000) 1000);
        oneofl [ 0.; 1.; -1.; 0.5; 1e-9; 1e9; -3.25; 255.; 256.; 257. ];
      ])

let prop_bucket_roundtrip =
  QCheck2.Test.make ~name:"bucket key roundtrips through its representative"
    ~count:500 gen_value (fun v ->
      let k = Observe.Metrics.bucket_of_value v in
      let r = Observe.Metrics.bucket_value k in
      (* The representative is in the same bucket... *)
      Observe.Metrics.bucket_of_value r = k
      (* ...on the zero side of the value... *)
      && Float.abs r <= Float.abs v +. 1e-300
      && (v = 0. || (v > 0.) = (r > 0.))
      (* ...within one linear sub-bucket of relative error (mantissa
         range 0.5 wide, 8 sub-buckets: ratio at most 1.125). *)
      && (v = 0. || Float.abs v /. Float.abs r <= 1.125 +. 1e-9))

let prop_bucket_monotone =
  QCheck2.Test.make ~name:"bucket keys are monotone in the value" ~count:500
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      let a, b = (Float.min a b, Float.max a b) in
      Observe.Metrics.bucket_of_value a <= Observe.Metrics.bucket_of_value b)

(* Quantiles of a merged collector are byte-identical to sequential
   recording: per-bucket counts add exactly, so p50/p90/p99 cannot
   drift no matter how the observations were partitioned. *)
let test_quantile_merge_exact () =
  let values =
    List.init 257 (fun i -> float_of_int (((i * 7919) mod 1000) - 200))
  in
  let record buf vs =
    Observe.Metrics.with_current buf (fun () ->
        let h = Observe.Metrics.histogram "t.q" in
        List.iter (Observe.Metrics.observe h) vs)
  in
  let seq = Observe.Metrics.create () in
  record seq values;
  let par = Observe.Metrics.create () in
  let left, right =
    List.partition (fun v -> int_of_float v mod 3 = 0) values
  in
  let b1 = Observe.Metrics.create () and b2 = Observe.Metrics.create () in
  record b1 left;
  record b2 right;
  Observe.Metrics.merge_into par b1;
  Observe.Metrics.merge_into par b2;
  check_str "merged stable render = sequential"
    (Observe.Metrics.render_stable seq)
    (Observe.Metrics.render_stable par);
  let row t =
    match Observe.Metrics.snapshot t with
    | [ r ] -> r
    | rs -> Alcotest.failf "expected one row, got %d" (List.length rs)
  in
  let rs = row seq and rp = row par in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%.0f merged = sequential" (p *. 100.))
        (Observe.Metrics.quantile rs p)
        (Observe.Metrics.quantile rp p))
    [ 0.5; 0.9; 0.99 ];
  let q50 = Observe.Metrics.quantile rs 0.5 in
  let q90 = Observe.Metrics.quantile rs 0.9 in
  let q99 = Observe.Metrics.quantile rs 0.99 in
  check_bool "quantiles are ordered" true (q50 <= q90 && q90 <= q99);
  check_bool "p99 <= max" true (q99 <= rs.Observe.Metrics.vmax)

(* ------------------------------------------------------------------ *)
(* Series: downsample/merge commutation *)

(* Two point streams with globally distinct ticks — the invariant the
   recorder actually runs under: merge sources are task buffers over
   partitioned work units (disjoint ordinals) or distinctly labelled
   sweep cells, so one tick never arrives from two sources. Commutation
   of downsampling with merging is only claimed (and only true) under
   that invariant: with colliding ticks, the positional last-write-wins
   in [push] depends on which neighbours survived the filter. *)
let gen_disjoint_points =
  QCheck2.Gen.(
    let* ticks = list_size (int_range 0 40) (int_range 0 60) in
    let ticks = List.sort_uniq compare ticks in
    let* tagged =
      flatten_l
        (List.map
           (fun tick ->
             let* v = map float_of_int (int_range (-50) 50) in
             let* left = bool in
             return (tick, v, left))
           ticks)
    in
    return
      ( List.filter_map (fun (t, v, l) -> if l then Some (t, v) else None) tagged,
        List.filter_map (fun (t, v, l) -> if l then None else Some (t, v)) tagged
      ))

let mk_recorder pts =
  let t = Observe.Series.create ~capacity:10_000 () in
  Observe.Series.with_current t (fun () ->
      List.iter (fun (tick, v) -> Observe.Series.sample "s" ~tick v) pts);
  t

let render t = Observe.Series.render_stable t

let prop_downsample_merge_commute =
  QCheck2.Test.make ~name:"downsample (merge a b) = merge (downsample a) \
                           (downsample b)" ~count:300 gen_disjoint_points
    (fun (pa, pb) ->
      Observe.Series.enable ();
      Fun.protect ~finally:Observe.Series.disable @@ fun () ->
      let path1 =
        let dst = mk_recorder pa in
        Observe.Series.merge_into dst (mk_recorder pb);
        Observe.Series.downsample dst;
        render dst
      in
      let path2 =
        let dst = mk_recorder pa in
        Observe.Series.downsample dst;
        let src = mk_recorder pb in
        Observe.Series.downsample src;
        Observe.Series.merge_into dst src;
        render dst
      in
      String.equal path1 path2)

(* Overflow downsampling is deterministic: stride doubles until the
   count fits, and only ticks on the stride survive. *)
let test_capacity_overflow () =
  Observe.Series.enable ();
  Fun.protect ~finally:Observe.Series.disable @@ fun () ->
  let t = Observe.Series.create ~capacity:4 () in
  Observe.Series.with_current t (fun () ->
      for tick = 0 to 20 do
        Observe.Series.sample "s" ~tick (float_of_int tick)
      done);
  match Observe.Series.rows t with
  | [ r ] ->
    check_bool "within capacity" true (List.length r.Observe.Series.points <= 4);
    check_bool "stride grew" true (r.Observe.Series.stride > 1);
    List.iter
      (fun (p : Observe.Series.point) ->
        check_int
          (Printf.sprintf "tick %d on stride" p.Observe.Series.tick)
          0
          (p.Observe.Series.tick mod r.Observe.Series.stride);
        Alcotest.(check (float 0.))
          "value kept with its tick"
          (float_of_int p.Observe.Series.tick)
          p.Observe.Series.value)
      r.Observe.Series.points
  | rs -> Alcotest.failf "expected one row, got %d" (List.length rs)

(* Auto-tick series renumber on merge replay: two task buffers merged in
   input order reproduce the sequential 0..n-1 numbering. *)
let test_auto_tick_renumber () =
  Observe.Series.enable ();
  Fun.protect ~finally:Observe.Series.disable @@ fun () ->
  let record vs =
    let b = Observe.Series.task_buffer () in
    Observe.Series.with_current b (fun () ->
        List.iter (Observe.Series.sample_auto "a") vs);
    b
  in
  let dst = Observe.Series.create () in
  Observe.Series.merge_into dst (record [ 10.; 11.; 12. ]);
  Observe.Series.merge_into dst (record [ 13.; 14. ]);
  match Observe.Series.rows dst with
  | [ r ] ->
    check_str "ticks renumbered in arrival order" "0:10,1:11,2:12,3:13,4:14"
      (String.concat ","
         (List.map
            (fun (p : Observe.Series.point) ->
              Printf.sprintf "%d:%.0f" p.Observe.Series.tick
                p.Observe.Series.value)
            r.Observe.Series.points))
  | rs -> Alcotest.failf "expected one row, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Jobs-invariance wall: series and quantile-bearing metric renders *)

(* Run [f] with clean, enabled recorders; return both canonical stable
   renderings (metrics now include p50/p90/p99 on histogram rows). *)
let trajectory_snapshot f =
  Observe.Metrics.reset Observe.Metrics.root;
  Observe.Series.reset Observe.Series.root;
  Observe.Series.enable ();
  Fun.protect ~finally:Observe.Series.disable (fun () -> ignore (f ()));
  Observe.Metrics.render_stable Observe.Metrics.root
  ^ "--\n"
  ^ Observe.Series.render_stable Observe.Series.root

let assert_trajectory_invariant name f =
  let baseline = trajectory_snapshot (fun () -> f 1) in
  check_bool (name ^ ": baseline records series") true
    (String.length baseline > 4);
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "%s: jobs=%d = jobs=1" name jobs)
        baseline
        (trajectory_snapshot (fun () -> f jobs)))
    job_counts

let small = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

let test_scan_series_jobs_invariant () =
  (* tc holds (full scan, every base group commits); comp-tc is violated
     (cancelled search: only groups up to the winning index commit). *)
  List.iter
    (fun (name, q) ->
      assert_trajectory_invariant ("held/witness scan " ^ name) (fun jobs ->
          Checker.check_exhaustive ~bounds:small ~jobs Classes.Plain q))
    [ ("tc", Zoo.tc); ("comp-tc", Zoo.comp_tc) ]

let net2 = Distributed.network_of_ints [ 101; 102 ]

let test_faulty_sweep_series_jobs_invariant () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let plan = Network.Fault.default in
  let cells =
    List.map
      (fun (label, base) ->
        (label, policy, Network.Run.Faulty { base; plan }))
      [
        ("rr", Network.Run.Round_robin);
        ("random", Network.Run.Random { seed = 1; steps = 40 });
        ("stingy", Network.Run.Stingy { seed = 2; steps = 60 });
      ]
  in
  assert_trajectory_invariant "faulty sweep" (fun jobs ->
      Network.Run.sweep ~jobs ~variant:Network.Config.policy_aware
        ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
        ~input cells)

(* ------------------------------------------------------------------ *)
(* Float round-trip: bench wall clocks are bit-exact through export →
   report ingestion, and non-finite values cannot enter a report. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let bench_doc wall_repr =
  Printf.sprintf
    {|{"schema":"calm-bench/v1","quick":true,"jobs":1,"experiments":[{"id":"E1","wall_s":%s,"metrics":{"monotone.probes":7}}]}|}
    wall_repr

let gen_wall =
  QCheck2.Gen.(
    oneof
      [
        map Float.abs float;
        map (fun f -> Float.abs f *. 1e-9) float;
        oneofl [ 0.; 0.1285; 1.5; 1e-300; 1.7e308; 4.2 ];
      ])

let prop_wall_roundtrip =
  QCheck2.Test.make
    ~name:"bench wall_s survives export -> report ingestion bit-exactly"
    ~count:500 gen_wall (fun w ->
      let doc = bench_doc (Observe.Json.to_string (Observe.Json.Float w)) in
      match Observe.Report.load_bench ~path:"gen.json" doc with
      | Error _ -> false
      | Ok b -> (
        match b.Observe.Report.experiments with
        | [ e ] ->
          Int64.equal (Int64.bits_of_float w)
            (Int64.bits_of_float e.Observe.Report.wall_s)
        | _ -> false))

let test_nonfinite_walls_rejected () =
  (* The printer never emits a non-finite number. *)
  List.iter
    (fun f ->
      check_str "non-finite prints as null" "null"
        (Observe.Json.to_string (Observe.Json.Float f)))
    [ nan; infinity; neg_infinity ];
  (* A crafted literal that parses to infinity is refused with a clear
     error instead of silently reported on. *)
  match Observe.Report.load_bench ~path:"bad.json" (bench_doc "1e999") with
  | Ok _ -> Alcotest.fail "infinite wall_s accepted"
  | Error m -> check_bool "error names the problem" true (contains m "non-finite")

(* ------------------------------------------------------------------ *)
(* Validators and the regression diff *)

let test_series_jsonl_validate () =
  Observe.Series.enable ();
  Fun.protect ~finally:Observe.Series.disable @@ fun () ->
  let t = Observe.Series.create () in
  Observe.Series.with_current t (fun () ->
      List.iter
        (fun tick ->
          Observe.Series.sample "net.round_pending"
            ~labels:[ ("cell", "rr") ]
            ~tick
            (float_of_int (tick * 2)))
        [ 0; 1; 2 ];
      Observe.Series.sample ~stable:false "scan.wall" ~tick:0 0.25);
  let doc = Observe.Series.to_jsonl t in
  (match Observe.Schema_check.validate_series_jsonl doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exporter output rejected: %s" m);
  List.iter
    (fun (what, bad) ->
      check_bool ("rejects " ^ what) true
        (Result.is_error (Observe.Schema_check.validate_series_jsonl bad)))
    [
      ("empty document", "");
      ("wrong header", {|{"schema":"calm-metrics/v1"}|});
      ( "stride 0",
        {|{"schema":"calm-series/v1"}
{"series":"s","labels":{},"stable":true,"stride":0,"points":[[0,1.0]]}|} );
      ( "malformed point",
        {|{"schema":"calm-series/v1"}
{"series":"s","labels":{},"stable":true,"stride":1,"points":[[1]]}|} );
      ( "missing stable",
        {|{"schema":"calm-series/v1"}
{"series":"s","labels":{},"stride":1,"points":[[0,1.0]]}|} );
      ( "non-string label",
        {|{"schema":"calm-series/v1"}
{"series":"s","labels":{"k":3},"stable":true,"stride":1,"points":[[0,1.0]]}|}
      );
    ]

(* [dune runtest] runs from _build/default/test, [dune exec] from the
   workspace root — locate fixtures relative to either. *)
let locate candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
    Alcotest.failf "fixture not found at any of: %s"
      (String.concat ", " candidates)

let bench_file name = locate [ "../" ^ name; name ]
let fixture_file name = locate [ "fixtures/" ^ name; "test/fixtures/" ^ name ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_bench_exn path =
  match Observe.Report.load_bench ~path (read_file path) with
  | Ok b -> b
  | Error m -> Alcotest.fail m

let test_report_diff_trajectory () =
  (* The committed history must pass clean... *)
  let history =
    List.map
      (fun n -> load_bench_exn (bench_file n))
      [ "BENCH_baseline.json"; "BENCH_indexed.json"; "BENCH_ivm.json" ]
  in
  let regressions, compared = Observe.Report.diff history in
  check_int "no regression on committed trajectory" 0
    (List.length regressions);
  check_bool "trajectory was actually compared" true (compared > 50);
  (* ...and the seeded fixture (BENCH_ivm with monotone.probes inflated
     on E12) must be flagged. *)
  let fixture = load_bench_exn (fixture_file "bench_regressed.json") in
  let regressions, _ =
    Observe.Report.diff
      [ load_bench_exn (bench_file "BENCH_ivm.json"); fixture ]
  in
  match regressions with
  | [ r ] ->
    check_str "regressed experiment" "E12" r.Observe.Report.experiment;
    check_str "regressed metric" "monotone.probes" r.Observe.Report.metric;
    check_bool "rendering mentions the metric" true
      (contains
         (Observe.Report.render_diff regressions 1)
         "monotone.probes")
  | rs -> Alcotest.failf "expected exactly one regression, got %d"
            (List.length rs)

let test_report_renderers () =
  let history =
    List.map
      (fun n -> load_bench_exn (bench_file n))
      [ "BENCH_indexed.json"; "BENCH_ivm.json" ]
  in
  let md = Observe.Report.markdown history in
  check_bool "markdown lists E12" true (contains md "| E12 |");
  let series =
    let t = Observe.Series.create () in
    Observe.Series.enable ();
    Fun.protect ~finally:Observe.Series.disable (fun () ->
        Observe.Series.with_current t (fun () ->
            List.iter
              (fun tick ->
                Observe.Series.sample "net.round_pending" ~tick
                  (float_of_int tick))
              [ 0; 1; 2; 3 ]));
    Observe.Series.to_jsonl t
  in
  let html = Observe.Report.html ~series history in
  check_bool "dashboard is html" true (contains html "<!doctype html>");
  check_bool "dashboard has sparklines" true (contains html "<svg");
  check_bool "dashboard shows the series" true
    (contains html "net.round_pending");
  check_bool "dashboard escapes" true (not (contains html "<script"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "series"
    [
      ( "histogram",
        [
          Alcotest.test_case "merged quantiles exact" `Quick
            test_quantile_merge_exact;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_bucket_roundtrip; prop_bucket_monotone ] );
      ( "recorder",
        [
          Alcotest.test_case "capacity overflow" `Quick test_capacity_overflow;
          Alcotest.test_case "auto ticks renumber on merge" `Quick
            test_auto_tick_renumber;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_downsample_merge_commute ] );
      ( "determinism-wall",
        [
          Alcotest.test_case "scan series across jobs" `Slow
            test_scan_series_jobs_invariant;
          Alcotest.test_case "faulty sweep series across jobs" `Quick
            test_faulty_sweep_series_jobs_invariant;
        ] );
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest [ prop_wall_roundtrip ]
        @ [
            Alcotest.test_case "non-finite walls rejected" `Quick
              test_nonfinite_walls_rejected;
          ] );
      ( "report",
        [
          Alcotest.test_case "series jsonl accept/reject" `Quick
            test_series_jsonl_validate;
          Alcotest.test_case "diff trajectory + fixture" `Quick
            test_report_diff_trajectory;
          Alcotest.test_case "markdown + dashboard" `Quick
            test_report_renderers;
        ] );
    ]
