(* Tests for the calm_core umbrella: hierarchy placement, compilation to
   coordination-free transducers, end-to-end verification, reporting. *)

open Relational
open Calm_core
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual

let small_bounds =
  { Monotone.Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

let net = Distributed.network_of_ints [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let test_level_order () =
  check_bool "M <= Mdistinct" true
    (Hierarchy.leq Hierarchy.Monotone Hierarchy.Domain_distinct);
  check_bool "Mdisjoint <= C" true
    (Hierarchy.leq Hierarchy.Domain_disjoint Hierarchy.Beyond);
  check_bool "not C <= M" false
    (Hierarchy.leq Hierarchy.Beyond Hierarchy.Monotone);
  Alcotest.(check int) "four levels" 4 (List.length Hierarchy.levels)

let test_of_fragment () =
  let open Datalog in
  let level src = Hierarchy.of_fragment (Fragment.classify (Parser.parse_program src)) in
  check_bool "tc -> M" true (level Zoo.tc_program = Hierarchy.Monotone);
  check_bool "sp -> Mdistinct" true
    (level "O(x) :- V(x), not E(x,x)." = Hierarchy.Domain_distinct);
  check_bool "comp-tc (semicon) -> Mdisjoint" true
    (Hierarchy.of_fragment
       (Fragment.classify (Adom.augment (Parser.parse_program Zoo.comp_tc_program)))
    = Hierarchy.Domain_disjoint);
  check_bool "P2 -> Beyond" true
    (Hierarchy.of_fragment
       (Fragment.classify (Adom.augment (Parser.parse_program Zoo.example_51_p2)))
    = Hierarchy.Beyond)

let test_empirical_placement () =
  check_bool "tc empirically M" true
    (Hierarchy.place_empirically ~bounds:small_bounds Zoo.tc
    = Hierarchy.Monotone);
  check_bool "comp-tc empirically Mdisjoint" true
    (Hierarchy.place_empirically ~bounds:small_bounds Zoo.comp_tc
    = Hierarchy.Domain_disjoint);
  check_bool "winmove empirically Mdisjoint" true
    (Hierarchy.place_empirically
       ~bounds:{ small_bounds with Monotone.Checker.max_base = 2 }
       Zoo.winmove
    = Hierarchy.Domain_disjoint)

let test_placement_of_program () =
  let p = Datalog.Program.parse Zoo.comp_tc_program in
  let syntactic, empirical =
    Hierarchy.placement_of_program ~bounds:small_bounds p
  in
  check_bool "syntactic Mdisjoint" true (syntactic = Hierarchy.Domain_disjoint);
  check_bool "empirical within syntactic" true (Hierarchy.leq empirical syntactic)

(* ------------------------------------------------------------------ *)
(* Compile + Verify *)

let tc_inputs = [ Instance.empty; Graph_gen.path 3 ]

let test_compile_monotone () =
  let c = Compile.compile ~level:Hierarchy.Monotone Zoo.tc in
  let r = Verify.check c ~inputs:tc_inputs net in
  check_bool "consistent" true r.Verify.consistent;
  check_bool "coordination-free" true r.Verify.coordination_free

let test_compile_distinct () =
  let c = Compile.compile ~level:Hierarchy.Domain_distinct Zoo.comp_tc in
  let r = Verify.check c ~inputs:[ Graph_gen.path 3 ] net in
  check_bool "consistent" true r.Verify.consistent;
  check_bool "coordination-free" true r.Verify.coordination_free

let test_compile_disjoint_winmove () =
  let c = Compile.compile ~level:Hierarchy.Domain_disjoint Zoo.winmove in
  check_bool "domain-guided only" true c.Compile.domain_guided_only;
  let input = Graph_gen.game ~seed:3 ~nodes:4 ~edges:5 in
  let r = Verify.check c ~inputs:[ input ] net in
  check_bool "consistent" true r.Verify.consistent;
  check_bool "coordination-free" true r.Verify.coordination_free

let test_compile_beyond_rejected () =
  match Compile.strategy_for Hierarchy.Beyond Zoo.tc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_compile_program_picks_level () =
  let p = Datalog.Program.parse Zoo.tc_program ~outputs:[ "T" ] in
  let c = Compile.compile_program p in
  check_bool "tc compiled at M" true (c.Compile.level = Hierarchy.Monotone);
  let p = Datalog.Program.parse Zoo.comp_tc_program in
  let c = Compile.compile_program p in
  check_bool "comp-tc compiled at Mdisjoint" true
    (c.Compile.level = Hierarchy.Domain_disjoint)

let test_compiled_program_runs () =
  (* A Datalog program, compiled and executed distributedly, agrees with
     its centralized evaluation. *)
  let p = Datalog.Program.parse Zoo.comp_tc_program in
  let c = Compile.compile_program p in
  let input = Graph_gen.path 3 in
  let expected = Datalog.Program.run p input in
  let policy = Network.Policy.hash_value c.Compile.query.Query.input net in
  let result =
    Network.Run.run ~variant:c.Compile.variant ~policy
      ~transducer:c.Compile.transducer ~input Network.Run.Round_robin
  in
  check_bool "quiesced" true result.Network.Run.quiesced;
  check_bool "distributed = centralized" true
    (Instance.equal result.Network.Run.outputs expected)

(* ------------------------------------------------------------------ *)
(* Empirical coordination detection (E25) *)

let test_compile_any_beyond_barrier () =
  (* Beyond queries now compile: to the coordinated barrier strategy. *)
  let c = Compile.compile_any ~level:Hierarchy.Beyond (Zoo.q_clique 3) in
  check_bool "level stays Beyond" true (c.Compile.level = Hierarchy.Beyond);
  check_bool "any policy allowed" false c.Compile.domain_guided_only;
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let expected = Query.apply (Zoo.q_clique 3) input in
  List.iter
    (fun policy ->
      let r =
        Network.Run.run ~variant:c.Compile.variant ~policy
          ~transducer:c.Compile.transducer ~input Network.Run.Round_robin
      in
      check_bool (Network.Policy.name policy ^ " quiesced") true
        r.Network.Run.quiesced;
      check_bool (Network.Policy.name policy ^ " correct") true
        (Instance.equal r.Network.Run.outputs expected))
    (Network.Netquery.default_policies (Zoo.q_clique 3).Query.input net)

let test_empirical_zoo_agrees () =
  let entries = Empirical.zoo () in
  check_bool "six zoo entries" true (List.length entries = 6);
  List.iter
    (fun (en : Empirical.entry) ->
      check_bool (en.Empirical.name ^ ": some correct quiescent run") true
        (List.exists
           (fun (v : Empirical.policy_verdict) ->
             v.Empirical.correct && v.Empirical.quiesced)
           en.Empirical.runs);
      check_bool (en.Empirical.name ^ ": observed verdict agrees with static")
        true en.Empirical.agree)
    entries;
  (* Win-move is the "sometimes" row: free under the good placements,
     coordinated under the scattering one. *)
  match
    List.find_opt
      (fun (en : Empirical.entry) -> en.Empirical.name = "winmove")
      entries
  with
  | None -> Alcotest.fail "winmove missing from the zoo"
  | Some en ->
    check_bool "winmove: some correct run is cut-free" true
      (List.exists
         (fun (v : Empirical.policy_verdict) ->
           v.Empirical.correct && v.Empirical.quiesced
           && not v.Empirical.coordinated)
         en.Empirical.runs);
    let scatter_cells =
      List.filter
        (fun (v : Empirical.policy_verdict) ->
          String.length v.Empirical.label >= 7
          && String.sub v.Empirical.label 0 7 = "scatter")
        en.Empirical.runs
    in
    check_bool "winmove: scatter cells present" true (scatter_cells <> []);
    List.iter
      (fun (v : Empirical.policy_verdict) ->
        check_bool (v.Empirical.label ^ ": coordinated") true
          v.Empirical.coordinated)
      scatter_cells

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_rendering () =
  let t = Report.create ~title:"demo" ~columns:[ "query"; "M"; "Mdistinct" ] in
  Report.add_row t [ "tc"; "in"; "in" ];
  Report.add_row t [ "comp-tc"; "NOT in"; "NOT in" ];
  Report.add_note t "bounded check";
  let s = Report.render t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "has title" true (contains s "== demo ==");
  check_bool "mentions comp-tc" true (contains s "comp-tc");
  check_bool "has note" true (contains s "note: bounded check");
  let md = Report.to_markdown t in
  check_bool "md heading" true (contains md "## demo");
  check_bool "md separator" true (contains md "| --- | --- | --- |");
  check_bool "md note" true (contains md "*bounded check*")

(* ------------------------------------------------------------------ *)
(* Figure 2 data *)

let test_figure2_wellformed () =
  let known_experiments =
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21" ]
  in
  List.iter
    (fun c ->
      check_bool "every claim has evidence" true (c.Figure2.evidence <> []);
      List.iter
        (fun e ->
          check_bool ("known experiment " ^ e) true
            (List.mem e known_experiments))
        c.Figure2.evidence)
    Figure2.claims;
  check_bool "renders" true (String.length (Figure2.render ()) > 100)

let test_figure2_hierarchy_consistent () =
  (* The figure's class chain must match the Hierarchy module's order. *)
  let chain =
    List.filter
      (fun c -> c.Figure2.relation = Figure2.Strictly_included)
      Figure2.claims
  in
  check_bool "M c Mdistinct present" true
    (List.exists
       (fun c -> c.Figure2.lhs = "M" && c.Figure2.rhs = "Mdistinct")
       chain);
  check_bool "F0 c F1 present" true
    (List.exists
       (fun c -> c.Figure2.lhs = "F0" && c.Figure2.rhs = "F1")
       chain)

let () =
  Alcotest.run "calm-core"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "order" `Quick test_level_order;
          Alcotest.test_case "of_fragment" `Quick test_of_fragment;
          Alcotest.test_case "empirical" `Slow test_empirical_placement;
          Alcotest.test_case "program placement" `Slow test_placement_of_program;
        ] );
      ( "compile",
        [
          Alcotest.test_case "monotone/tc" `Slow test_compile_monotone;
          Alcotest.test_case "distinct/comp-tc" `Slow test_compile_distinct;
          Alcotest.test_case "disjoint/winmove" `Slow test_compile_disjoint_winmove;
          Alcotest.test_case "beyond rejected" `Quick test_compile_beyond_rejected;
          Alcotest.test_case "program level" `Quick test_compile_program_picks_level;
          Alcotest.test_case "compiled program runs" `Slow test_compiled_program_runs;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "compile_any: barrier computes Beyond" `Slow
            test_compile_any_beyond_barrier;
          Alcotest.test_case "zoo agrees with static claims" `Slow
            test_empirical_zoo_agrees;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "figure2",
        [
          Alcotest.test_case "well-formed" `Quick test_figure2_wellformed;
          Alcotest.test_case "hierarchy consistent" `Quick
            test_figure2_hierarchy_consistent;
        ] );
    ]
