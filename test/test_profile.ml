(* The profiling test wall.

   Pins the introspection layer added with [calm plan] / [calm profile]:
   1. The folded-stack exporter and parser are exact inverses (qcheck),
      and the parser rejects malformed lines.
   2. A real profiled scan produces a calm-profile/v1 document the
      schema validator accepts; tampered documents are rejected; the
      Chrome rendering validates as a trace-event document.
   3. The stable projection of a profile — span paths, visit counts,
      annotations, and the per-rule ANALYZE counters — is byte-identical
      across --jobs 1/2/4, on held and violated (cancelled) scans.
   4. Span trees reconstruct with the recorded nesting, sanitized frame
      names, aggregated visit counts, and coverage fractions in [0,1].
   5. EXPLAIN reports are structurally sane: actual candidates never
      exceed the nested-loop estimate, fired <= valuations, and a pass
      over the fixpoint derives nothing new. *)

open Relational
open Monotone
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_str name expected actual = Alcotest.(check string) name expected actual

let small = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }
let job_counts = [ 2; 4 ]

(* Run [f] with profiling enabled on a clean root collector; profiling
   is switched off again even if [f] raises. *)
let profiled f =
  Observe.Metrics.reset Observe.Metrics.root;
  Observe.Profile.enable ();
  Fun.protect ~finally:Observe.Profile.disable f

let scan_profile () =
  profiled (fun () ->
      ignore (Checker.check_exhaustive ~bounds:small Classes.Disjoint Zoo.comp_tc))

(* ------------------------------------------------------------------ *)
(* Folded stacks: qcheck round-trip + reject cases *)

let gen_frame =
  let open QCheck2.Gen in
  (* Characters the span sanitizer already guarantees: anything but the
     separators ';' (stack), ' ' (value field), '/' and newlines. *)
  let safe = [ 'a'; 'b'; 'k'; 'x'; 'z'; '0'; '9'; '_'; '.'; ':'; '-' ] in
  map
    (fun cs -> String.init (List.length cs) (List.nth cs))
    (list_size (int_range 1 8) (oneofl safe))

let gen_stacks =
  let open QCheck2.Gen in
  list_size (int_range 0 12)
    (pair (list_size (int_range 1 5) gen_frame) (int_range 0 1_000_000))

let prop_folded_roundtrip =
  QCheck2.Test.make ~name:"folded_of_spans/of_folded identity" ~count:300
    gen_stacks (fun xs ->
      match Observe.Profile.of_folded (Observe.Profile.folded_of_spans xs) with
      | Ok xs' -> xs = xs'
      | Error _ -> false)

let test_folded_rejects () =
  List.iter
    (fun (label, s) ->
      check_bool (label ^ " rejected") true
        (Result.is_error (Observe.Profile.of_folded s)))
    [
      ("empty middle frame", "a;;b 3\n");
      ("empty leading frame", ";a 3\n");
      ("empty stack", " 3\n");
      ("missing value", "a;b\n");
      ("non-integer value", "a;b many\n");
      ("float value", "a;b 3.5\n");
      ("negative value", "a;b -4\n");
    ];
  (match Observe.Profile.of_folded "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty input should parse to []");
  match Observe.Profile.of_folded "a;b 2\n\nc 0\n" with
  | Ok [ ([ "a"; "b" ], 2); ([ "c" ], 0) ] -> ()
  | _ -> Alcotest.fail "blank interior lines should be skipped"

(* ------------------------------------------------------------------ *)
(* Span trees: shape, sanitization, aggregation, the off switch *)

let test_disabled_is_noop () =
  Observe.Profile.disable ();
  Observe.Metrics.reset Observe.Metrics.root;
  check_bool "disabled by default" false (Observe.Profile.is_enabled ());
  Observe.Profile.span "ghost" (fun () -> Observe.Profile.annot "mark");
  check_bool "no spans recorded while disabled" true
    (Observe.Profile.spans Observe.Metrics.root = []);
  check_str "stable rendering empty" ""
    (Observe.Profile.render_stable Observe.Metrics.root)

let test_span_tree_shape () =
  profiled (fun () ->
      Observe.Profile.span "outer" (fun () ->
          Observe.Profile.annot "mark";
          Observe.Profile.span "inner a/b" (fun () -> ());
          Observe.Profile.span "inner a/b" (fun () -> ()));
      Observe.Profile.span_rooted [ "outer"; "rooted" ] (fun () -> ()));
  let frame n =
    List.nth n.Observe.Profile.path (List.length n.Observe.Profile.path - 1)
  in
  match Observe.Profile.spans Observe.Metrics.root with
  | [ outer ] -> (
    check_str "root frame" "outer" (frame outer);
    check_bool "root visited once (rooted child counts only itself)" true
      (outer.Observe.Profile.count = 1);
    check_bool "annot recorded on the root" true
      (outer.Observe.Profile.annots = [ ("mark", 1) ]);
    match outer.Observe.Profile.children with
    | [ a; b ] ->
      check_str "separators sanitized to _" "inner_a_b" (frame a);
      check_bool "repeat visits aggregate" true (a.Observe.Profile.count = 2);
      check_str "rooted span lands under the same root" "rooted" (frame b);
      List.iter
        (fun n ->
          let c = Observe.Profile.coverage n in
          check_bool "coverage in [0,1]" true (c >= 0. && c <= 1.))
        (Observe.Profile.flatten [ outer ])
    | kids -> Alcotest.failf "expected 2 children, got %d" (List.length kids))
  | _ -> Alcotest.fail "expected a single root span"

(* ------------------------------------------------------------------ *)
(* Validators: accept the real export, reject tampering *)

let test_profile_json_valid () =
  scan_profile ();
  let doc = Observe.Profile.to_json Observe.Metrics.root in
  (match Observe.Schema_check.validate_profile doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "real profile rejected: %s" m);
  let nodes = Observe.Profile.spans Observe.Metrics.root in
  check_bool "the scan recorded spans" true (nodes <> []);
  (* The folded export of the same collector parses back under the
     format's own parser, with plausible values. *)
  (match
     Observe.Profile.of_folded (Observe.Profile.to_folded Observe.Metrics.root)
   with
  | Ok stacks ->
    check_bool "folded export nonempty" true (stacks <> []);
    List.iter
      (fun (frames, v) ->
        check_bool "frames nonempty" true (frames <> []);
        check_bool "self-time (us) nonnegative" true (v >= 0))
      stacks
  | Error m -> Alcotest.failf "folded export does not parse: %s" m);
  List.iter
    (fun n ->
      let c = Observe.Profile.coverage n in
      check_bool "coverage in [0,1]" true (c >= 0. && c <= 1.))
    (Observe.Profile.flatten nodes)

let test_profile_tampering_rejected () =
  scan_profile ();
  let doc = Observe.Profile.to_json Observe.Metrics.root in
  let tamper f =
    match doc with
    | Observe.Json.Obj fields -> Observe.Json.Obj (f fields)
    | _ -> Alcotest.fail "profile doc is not an object"
  in
  let swap_first_span g =
    tamper
      (List.map (function
        | ("spans", Observe.Json.List (Observe.Json.Obj row :: rest)) ->
          ("spans", Observe.Json.List (Observe.Json.Obj (g row) :: rest))
        | kv -> kv))
  in
  let rejects name tampered =
    check_bool (name ^ " rejected") true
      (Result.is_error (Observe.Schema_check.validate_profile tampered))
  in
  rejects "wrong schema tag"
    (tamper
       (List.map (function
         | ("schema", _) -> ("schema", Observe.Json.String "bogus/v9")
         | kv -> kv)));
  rejects "missing spans section" (tamper (List.remove_assoc "spans"));
  rejects "empty path frame"
    (swap_first_span
       (List.map (function
         | ("path", _) -> ("path", Observe.Json.String "scan//base")
         | kv -> kv)));
  rejects "negative count"
    (swap_first_span
       (List.map (function
         | ("count", _) -> ("count", Observe.Json.Int (-1))
         | kv -> kv)));
  rejects "self time exceeding total"
    (swap_first_span
       (List.map (function
         | ("self_s", _) -> ("self_s", Observe.Json.Float 5.0)
         | ("total_s", _) -> ("total_s", Observe.Json.Float 1.0)
         | kv -> kv)));
  rejects "negative annotation"
    (swap_first_span
       (List.map (function
         | ("annots", _) ->
           ( "annots",
             Observe.Json.Obj [ ("cache_hit", Observe.Json.Int (-2)) ] )
         | kv -> kv)))

let test_profile_chrome_valid () =
  scan_profile ();
  let events = Observe.Profile.to_chrome_events Observe.Metrics.root in
  check_bool "chrome events nonempty" true (events <> []);
  match Observe.Json.of_string (Observe.Sink.to_chrome events) with
  | Error m -> Alcotest.failf "chrome render is not JSON: %s" m
  | Ok j -> (
    match Observe.Schema_check.validate_trace j with
    | Ok () -> ()
    | Error m -> Alcotest.failf "chrome render fails trace validation: %s" m)

(* ------------------------------------------------------------------ *)
(* Jobs-invariance wall for the stable profile fields *)

let profile_stable kind q jobs =
  profiled (fun () ->
      ignore (Checker.check_exhaustive ~bounds:small ~jobs kind q));
  ( Observe.Profile.render_stable Observe.Metrics.root,
    Observe.Metrics.render_stable Observe.Metrics.root )

let test_profile_jobs_invariant () =
  List.iter
    (fun (name, q, kind) ->
      let base_profile, base_metrics = profile_stable kind q 1 in
      check_bool (name ^ ": profile records spans") true (base_profile <> "");
      List.iter
        (fun jobs ->
          let p, m = profile_stable kind q jobs in
          check_str
            (Printf.sprintf "%s: profile jobs=%d = jobs=1" name jobs)
            base_profile p;
          check_str
            (Printf.sprintf "%s: stable metrics jobs=%d = jobs=1" name jobs)
            base_metrics m)
        job_counts)
    [
      (* held (full scan), violated via witness route, violated with a
         cancelled search — the pool's merge-up-to-winner path. *)
      ("tc/plain", Zoo.tc, Classes.Plain);
      ("comp-tc/disjoint", Zoo.comp_tc, Classes.Disjoint);
      ("comp-tc/distinct", Zoo.comp_tc, Classes.Distinct);
    ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN: structural sanity of the plan reports *)

let tc_rules =
  Datalog.Parser.parse_program
    "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z)."

let tc_input =
  List.fold_left
    (fun acc (a, b) ->
      Instance.add (Fact.make "E" [ Value.int a; Value.int b ]) acc)
    Instance.empty
    [ (1, 2); (2, 3); (3, 4) ]

let test_explain_sanity () =
  let db = Datalog.Eval.stratified_exn tc_rules tc_input in
  let reports = Datalog.Eval.explain tc_rules db in
  check_bool "one report per rule" true
    (List.length reports = List.length tc_rules);
  List.iter
    (fun (r : Datalog.Eval.rule_report) ->
      check_bool "every body atom reported" true (r.atom_reports <> []);
      check_bool "fired <= valuations" true (r.fired <= r.valuations);
      check_bool "derived <= fired" true (r.derived <= r.fired);
      check_bool "a pass over the fixpoint derives nothing" true
        (r.derived = 0);
      List.iter
        (fun (a : Datalog.Eval.atom_report) ->
          check_bool "actual candidates <= nested-loop estimate" true
            (a.candidates <= a.est_candidates);
          check_bool "nonnegative tallies" true
            (a.lookups >= 0 && a.extent >= 0 && a.candidates >= 0))
        r.atom_reports)
    reports;
  check_str "rule label format" "T<-T,E"
    (Datalog.Eval.rule_label (List.nth tc_rules 1));
  let rendered = Format.asprintf "%a" Datalog.Eval.pp_explain reports in
  check_bool "renderer mentions the estimate column" true
    (String.length rendered > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "profile"
    [
      ( "folded",
        Alcotest.test_case "reject cases" `Quick test_folded_rejects
        :: List.map QCheck_alcotest.to_alcotest [ prop_folded_roundtrip ] );
      ( "spans",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "tree shape" `Quick test_span_tree_shape;
        ] );
      ( "validators",
        [
          Alcotest.test_case "profile accept" `Quick test_profile_json_valid;
          Alcotest.test_case "profile reject" `Quick
            test_profile_tampering_rejected;
          Alcotest.test_case "chrome render validates" `Quick
            test_profile_chrome_valid;
        ] );
      ( "determinism-wall",
        [
          Alcotest.test_case "profile fields across jobs" `Slow
            test_profile_jobs_invariant;
        ] );
      ( "explain",
        [ Alcotest.test_case "report sanity" `Quick test_explain_sanity ] );
    ]
