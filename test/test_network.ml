(* Tests for the transducer-network simulator and the three evaluation
   strategies: Example 4.1, the transition semantics of Section 4.1.3,
   query computation (Section 4.1.4), coordination-freeness witnesses
   (Definition 3), and the constructive content of Theorems 4.3/4.4/4.5. *)

open Relational
open Network
open Queries

let v = Value.int
let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let instance_testable = Alcotest.testable Instance.pp Instance.equal

let net12 = Distributed.network_of_ints [ 1; 2 ]
let net_ab = Distributed.network_of_ints [ 10; 20 ]

let graph = Graph_gen.schema
let e a b = Graph_gen.edge a b

(* ------------------------------------------------------------------ *)
(* Example 4.1: the two distribution policies of the paper. *)

let example_input = Instance.of_list [ e 1 3; e 3 4; e 4 6 ]

let p1_first_attr_parity =
  (* P1: facts with odd first attribute to node 1, even to node 2. *)
  Policy.make ~name:"P1" graph net12 (fun f ->
      match Fact.arg f 0 with
      | Value.Int a when a mod 2 = 1 -> [ v 1 ]
      | _ -> [ v 2 ])

let p2_domain_guided =
  (* P2: domain assignment α(odd) = {1}, α(even) = {2}. *)
  Policy.domain_guided ~name:"P2" graph net12 (fun value ->
      match value with
      | Value.Int a when a mod 2 = 1 -> [ v 1 ]
      | _ -> [ v 2 ])

let test_example_41_p1 () =
  let h = Policy.dist p1_first_attr_parity example_input in
  Alcotest.check instance_testable "node 1"
    (Instance.of_list [ e 1 3; e 3 4 ])
    (Distributed.local h (v 1));
  Alcotest.check instance_testable "node 2"
    (Instance.of_list [ e 4 6 ])
    (Distributed.local h (v 2));
  check_bool "P1 not domain-guided" false
    (Policy.is_domain_guided p1_first_attr_parity)

let test_example_41_p2 () =
  let h = Policy.dist p2_domain_guided example_input in
  Alcotest.check instance_testable "node 1"
    (Instance.of_list [ e 1 3; e 3 4 ])
    (Distributed.local h (v 1));
  Alcotest.check instance_testable "node 2"
    (Instance.of_list [ e 3 4; e 4 6 ])
    (Distributed.local h (v 2));
  check_bool "P2 domain-guided" true (Policy.is_domain_guided p2_domain_guided)

let test_policy_constructors () =
  let i = Instance.of_list [ e 1 2; e 3 4 ] in
  let all = Policy.replicate_all graph net12 in
  let h = Policy.dist all i in
  Alcotest.check instance_testable "replicated" i (Distributed.local h (v 1));
  Alcotest.check instance_testable "replicated" i (Distributed.local h (v 2));
  let single = Policy.single graph net12 (v 2) in
  let h = Policy.dist single i in
  check_bool "node 1 empty" true (Instance.is_empty (Distributed.local h (v 1)));
  Alcotest.check instance_testable "node 2 has all" i
    (Distributed.local h (v 2));
  check_bool "single is domain-guided" true (Policy.is_domain_guided single);
  (* Every fact assigned somewhere under hash policies. *)
  List.iter
    (fun p ->
      Instance.iter
        (fun f -> check_bool "nonempty assignment" true (Policy.assign p f <> []))
        i)
    [ Policy.hash_fact graph net12; Policy.hash_value graph net12 ]

let test_policy_override () =
  let base = Policy.single graph net12 (v 1) in
  let p =
    Policy.override ~name:"override"
      ~on:(fun f -> Value.equal (Fact.arg f 0) (v 3))
      ~to_:[ v 2 ] base
  in
  check_bool "overridden" true (Policy.responsible p (v 2) (e 3 4));
  check_bool "not at 1" false (Policy.responsible p (v 1) (e 3 4));
  check_bool "others unchanged" true (Policy.responsible p (v 1) (e 1 2));
  check_bool "override not domain-guided" false (Policy.is_domain_guided p)

let test_policy_schema_guard () =
  Alcotest.(check bool) "bad fact rejected" true
    (match Policy.assign p2_domain_guided (Fact.make "X" [ v 1 ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Transducer schema *)

let test_schema_system () =
  let sys = Transducer_schema.system_schema graph in
  Alcotest.(check (option int)) "Id" (Some 1) (Schema.arity sys "Id");
  Alcotest.(check (option int)) "All" (Some 1) (Schema.arity sys "All");
  Alcotest.(check (option int)) "MyAdom" (Some 1) (Schema.arity sys "MyAdom");
  Alcotest.(check (option int)) "policy_E" (Some 2) (Schema.arity sys "policy_E")

let test_schema_disjointness () =
  match
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("E", 2) ])
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected disjointness failure"

(* ------------------------------------------------------------------ *)
(* Config transitions with a hand-built echo transducer *)

(* Echoes local input facts to output relation O and sends them as Msg_E;
   memorizes received facts in Got_E. *)
let echo_schema =
  Transducer_schema.make ~input:graph
    ~output:(Schema.of_list [ ("O", 2) ])
    ~message:(Schema.of_list [ ("Msg_E", 2) ])
    ~memory:(Schema.of_list [ ("Got_E", 2) ])
    ()

let rename_to to_rel i =
  Instance.fold
    (fun f acc -> Instance.add (Fact.make to_rel (Fact.args f)) acc)
    i Instance.empty

let echo =
  Transducer.make ~schema:echo_schema
    ~out:(fun d -> rename_to "O" (Instance.restrict d graph))
    ~ins:(fun d -> rename_to "Got_E" (Instance.restrict_rels d [ "Msg_E" ]))
    ~snd:(fun d -> rename_to "Msg_E" (Instance.restrict d graph))
    ()

let input12 = Instance.of_list [ e 1 2; e 2 3 ]

let test_transition_basic () =
  let policy = Policy.first_attribute graph net12 in
  (* first_attribute hash: just check mechanics, not placement. *)
  let c0 = Config.start net12 in
  let c1, stats =
    Config.heartbeat ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 c0 ~node:(v 1)
  in
  let local1 =
    Distributed.local (Policy.dist policy input12) (v 1)
  in
  Alcotest.check instance_testable "output echoes local input"
    (rename_to "O" local1)
    (Instance.restrict_rels (Config.state_of c1 (v 1)) [ "O" ]);
  check_int "messages = |local| copies to 1 other node"
    (Instance.cardinal local1) stats.Config.messages_sent;
  check_bool "node 2 got them" true
    (Multiset.size (Config.buffer_of c1 (v 2)) = Instance.cardinal local1);
  check_bool "node 1 buffer empty" true
    (Multiset.is_empty (Config.buffer_of c1 (v 1)))

let test_transition_delivery_and_memory () =
  let policy = Policy.single graph net12 (v 1) in
  let c0 = Config.start net12 in
  let c1, _ =
    Config.heartbeat ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 c0 ~node:(v 1)
  in
  (* Deliver everything to node 2. *)
  let deliver = Config.buffer_of c1 (v 2) in
  let c2, stats =
    Config.transition ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 c1 ~node:(v 2) ~deliver
  in
  check_int "delivered" 2 stats.Config.delivered;
  Alcotest.check instance_testable "memorized"
    (rename_to "Got_E" input12)
    (Instance.restrict_rels (Config.state_of c2 (v 2)) [ "Got_E" ]);
  check_bool "buffer drained" true (Multiset.is_empty (Config.buffer_of c2 (v 2)))

let test_transition_submultiset_guard () =
  let policy = Policy.single graph net12 (v 1) in
  let c0 = Config.start net12 in
  match
    Config.transition ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 c0 ~node:(v 2)
      ~deliver:(Multiset.of_list [ Fact.make "Msg_E" [ v 1; v 2 ] ])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected submultiset failure"

let test_insert_delete_semantics () =
  (* ins and del overlap: (mem ∪ (ins\del)) \ (del\ins). *)
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("O", 2) ])
      ~memory:(Schema.of_list [ ("Keep", 1); ("Both", 1); ("Drop", 1) ])
      ()
  in
  let t =
    Transducer.make ~schema
      ~ins:(fun _ ->
        Instance.of_list [ Fact.make "Keep" [ v 7 ]; Fact.make "Both" [ v 7 ] ])
      ~del:(fun _ ->
        Instance.of_list [ Fact.make "Both" [ v 7 ]; Fact.make "Drop" [ v 7 ] ])
      ()
  in
  let policy = Policy.single graph net12 (v 1) in
  let c0 = Config.start net12 in
  let c1, _ =
    Config.heartbeat ~variant:Config.policy_aware ~policy ~transducer:t
      ~input:Instance.empty c0 ~node:(v 1)
  in
  let mem = Config.state_of c1 (v 1) in
  check_bool "Keep inserted" true (Instance.mem (Fact.make "Keep" [ v 7 ]) mem);
  check_bool "Both no-op (absent)" false
    (Instance.mem (Fact.make "Both" [ v 7 ]) mem);
  check_bool "Drop absent" false (Instance.mem (Fact.make "Drop" [ v 7 ]) mem)

let test_system_facts_variants () =
  let policy = Policy.single graph net12 (v 1) in
  let a = Value.Set.of_list [ v 1; v 2; v 5 ] in
  let s_pa = Config.system_facts Config.policy_aware policy net12 (v 1) a in
  check_bool "Id" true (Instance.mem (Fact.make "Id" [ v 1 ]) s_pa);
  check_bool "All 2" true (Instance.mem (Fact.make "All" [ v 2 ]) s_pa);
  check_bool "MyAdom 5" true (Instance.mem (Fact.make "MyAdom" [ v 5 ]) s_pa);
  check_bool "policy_E present (responsible for everything)" true
    (Instance.mem (Fact.make "policy_E" [ v 5; v 5 ]) s_pa);
  let s_orig = Config.system_facts Config.original policy net12 (v 1) a in
  check_bool "original: no MyAdom" false
    (Instance.exists (fun f -> Fact.rel f = "MyAdom") s_orig);
  check_bool "original: no policy" false
    (Instance.exists (fun f -> Fact.rel f = "policy_E") s_orig);
  let s_af = Config.system_facts Config.all_free policy net12 (v 1) a in
  check_bool "all-free: no All" false
    (Instance.exists (fun f -> Fact.rel f = "All") s_af);
  let s_ob = Config.system_facts Config.oblivious policy net12 (v 1) a in
  check_bool "oblivious: empty" true (Instance.is_empty s_ob)

let test_policy_facts_restricted_to_adom () =
  (* "Safe" access: policy rows only over A (Section 4.1.2 footnote). *)
  let policy = Policy.single graph net12 (v 1) in
  let a = Value.Set.of_list [ v 1 ] in
  let s = Config.system_facts Config.policy_aware policy net12 (v 1) a in
  check_bool "policy over A only" false
    (Instance.mem (Fact.make "policy_E" [ v 9; v 9 ]) s)

(* ------------------------------------------------------------------ *)
(* Runs *)

let test_run_echo_quiesces () =
  let policy = Policy.first_attribute graph net12 in
  let r =
    Run.run ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 Run.Round_robin
  in
  check_bool "quiesced" true r.Run.quiesced;
  Alcotest.check instance_testable "all inputs echoed"
    (rename_to "O" input12)
    r.Run.outputs

let test_run_non_quiescing_reports () =
  (* A transducer that toggles a memory fact forever never quiesces; the
     runner reports it instead of looping. *)
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("O", 2) ])
      ~memory:(Schema.of_list [ ("Flag", 1) ])
      ()
  in
  let flag = Fact.make "Flag" [ v 0 ] in
  let toggler =
    Transducer.make ~schema
      ~ins:(fun d ->
        if Instance.mem flag d then Instance.empty
        else Instance.of_list [ flag ])
      ~del:(fun d ->
        if Instance.mem flag d then Instance.of_list [ flag ]
        else Instance.empty)
      ()
  in
  let policy = Policy.single graph net12 (v 1) in
  let r =
    Run.run ~max_rounds:20 ~variant:Config.policy_aware ~policy
      ~transducer:toggler ~input:input12 Run.Round_robin
  in
  check_bool "did not quiesce" false r.Run.quiesced;
  check_int "hit the round bound" 20 r.Run.rounds

let test_run_schedulers_agree () =
  let policy = Policy.first_attribute graph net12 in
  let out sched =
    (Run.run ~variant:Config.policy_aware ~policy ~transducer:echo
       ~input:input12 sched)
      .Run.outputs
  in
  let expected = rename_to "O" input12 in
  Alcotest.check instance_testable "round-robin" expected (out Run.Round_robin);
  Alcotest.check instance_testable "random" expected
    (out (Run.Random { seed = 3; steps = 40 }));
  Alcotest.check instance_testable "stingy" expected
    (out (Run.Stingy { seed = 4; steps = 60 }))

let test_trace_collection () =
  let policy = Policy.first_attribute graph net12 in
  let tracer = Trace.collector () in
  let r =
    Run.run ~tracer ~variant:Config.policy_aware ~policy ~transducer:echo
      ~input:input12 Run.Round_robin
  in
  let events = Trace.events tracer in
  check_int "one event per transition" r.Run.transitions (List.length events);
  check_bool "indices increase" true
    (List.for_all2
       (fun e i -> e.Trace.index = i)
       events
       (List.init (List.length events) (fun i -> i + 1)));
  let timeline = Trace.outputs_timeline tracer in
  check_int "every output fact appears once in the timeline"
    (Instance.cardinal r.Run.outputs)
    (List.length timeline);
  check_bool "summary renders" true
    (String.length (Format.asprintf "%a" (Trace.pp_summary ~limit:3) tracer) > 0)

(* ------------------------------------------------------------------ *)
(* Strategies: Theorem-level behaviour *)

let tc_input = Instance.of_list [ e 1 2; e 2 3; e 5 1 ]

let test_broadcast_computes_tc () =
  let t = Strategies.Broadcast.transducer Zoo.tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t ~query:Zoo.tc
      ~input:tc_input net12
  in
  check_bool
    (Printf.sprintf "consistent (mismatches: %s)"
       (String.concat "," verdict.Netquery.mismatches))
    true
    (Netquery.consistent verdict)

let test_broadcast_works_obliviously () =
  (* The M strategy uses no system relations at all (Corollary 4.6). *)
  let t = Strategies.Broadcast.transducer Zoo.tc in
  let verdict =
    Netquery.check ~variant:Config.oblivious ~transducer:t ~query:Zoo.tc
      ~input:tc_input net12
  in
  check_bool "consistent obliviously" true (Netquery.consistent verdict)

let test_broadcast_fails_comp_tc () =
  (* F0 ⊊ F1: the monotone strategy cannot compute the non-monotone Q_TC —
     partial views produce wrong (unretractable) outputs under partitioned
     policies and slow delivery. *)
  let t = Strategies.Broadcast.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.comp_tc ~input:tc_input net12
  in
  check_bool "some run is wrong" true (verdict.Netquery.mismatches <> [])

let test_broadcast_delta_computes_tc () =
  let t = Strategies.Broadcast_delta.transducer Zoo.tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t ~query:Zoo.tc
      ~input:tc_input net12
  in
  check_bool "consistent" true (Netquery.consistent verdict)

let test_broadcast_delta_sends_less () =
  let policy = Policy.hash_fact graph net12 in
  let messages t =
    (Run.run ~variant:Config.policy_aware ~policy ~transducer:t
       ~input:tc_input Run.Round_robin)
      .Run.messages_sent
  in
  let naive = messages (Strategies.Broadcast.transducer Zoo.tc) in
  let delta = messages (Strategies.Broadcast_delta.transducer Zoo.tc) in
  check_bool
    (Printf.sprintf "delta (%d) < naive (%d)" delta naive)
    true (delta < naive)

let test_absence_computes_comp_tc () =
  let t = Strategies.Absence.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.comp_tc ~input:tc_input net12
  in
  check_bool
    (Printf.sprintf "consistent (mismatches: %s)"
       (String.concat "," verdict.Netquery.mismatches))
    true
    (Netquery.consistent verdict)

let test_absence_needs_policy_relations () =
  (* In the original model (no policy_R), absences cannot be certified and
     Q_TC is under-computed: F0 ⊊ F1 from the other side. *)
  let t = Strategies.Absence.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.original ~transducer:t ~query:Zoo.comp_tc
      ~input:tc_input net12
  in
  check_bool "inconsistent without policy relations" true
    (verdict.Netquery.mismatches <> [])

let test_absence_all_free () =
  (* Theorem 4.5: the same transducer works without All. *)
  let t = Strategies.Absence.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.all_free ~transducer:t ~query:Zoo.comp_tc
      ~input:tc_input net12
  in
  check_bool "consistent without All" true (Netquery.consistent verdict)

let winmove_input =
  Instance.of_list
    [
      Fact.make "Move" [ v 1; v 2 ];
      Fact.make "Move" [ v 2; v 3 ];
      Fact.make "Move" [ v 4; v 4 ];
    ]

let dg_policies schema net =
  Netquery.default_policies ~domain_guided_only:true schema net

let test_domain_request_computes_winmove () =
  let t = Strategies.Domain_request.transducer Zoo.winmove in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.winmove ~input:winmove_input
      ~policies:(dg_policies Zoo.winmove.Query.input net12)
      net12
  in
  check_bool
    (Printf.sprintf "consistent (mismatches: %s)"
       (String.concat "," verdict.Netquery.mismatches))
    true
    (Netquery.consistent verdict)

let test_domain_request_computes_comp_tc () =
  let t = Strategies.Domain_request.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.comp_tc ~input:tc_input
      ~policies:(dg_policies graph net12)
      net12
  in
  check_bool "consistent" true (Netquery.consistent verdict)

let test_domain_request_all_free () =
  let t = Strategies.Domain_request.transducer Zoo.winmove in
  let verdict =
    Netquery.check ~variant:Config.all_free ~transducer:t ~query:Zoo.winmove
      ~input:winmove_input
      ~policies:(dg_policies Zoo.winmove.Query.input net12)
      net12
  in
  check_bool "consistent without All" true (Netquery.consistent verdict)

let test_absence_wrong_on_winmove_partition () =
  (* F1 ⊊ F2 intuition: the Mdistinct strategy outputs from complete
     induced subinstances, which is unsound for win-move. We script the
     adversarial fair-run prefix explicitly: node 10 becomes complete on
     {1,2,4} while the message carrying Move(2,3) is still in flight, and
     wrongly outputs Win(1) (in the full game 2 wins via 3, so 1 loses). *)
  let t = Strategies.Absence.transducer Zoo.winmove in
  let move_schema = Zoo.winmove.Query.input in
  let base = Policy.single move_schema net_ab (v 10) in
  let policy =
    Policy.override ~name:"split"
      ~on:(fun f -> Value.equal (Fact.arg f 0) (v 2))
      ~to_:[ v 20 ] base
  in
  let step config node deliver =
    fst
      (Config.transition ~variant:Config.policy_aware ~policy ~transducer:t
         ~input:winmove_input config ~node ~deliver)
  in
  let abs args = Fact.make "AbsMsg_Move" (List.map v args) in
  (* 1. Node 10 heartbeats: broadcasts its facts and its absence
     certificates (it is responsible for every fact whose first value is
     not 2). *)
  let c = step (Config.start net_ab) (v 10) Multiset.empty in
  (* 2. Deliver to node 20 only two absences, teaching it values 1 and 4;
     it then certifies all Move(2,_) absences over {1,2,4,10,20} except
     the present Move(2,3). *)
  let teach = Multiset.of_list [ abs [ 1; 1 ]; abs [ 1; 4 ] ] in
  check_bool "teaching messages are in 20's buffer" true
    (Multiset.sub teach (Config.buffer_of c (v 20)));
  let c = step c (v 20) teach in
  (* 3. Deliver to node 10 exactly the five certificates it needs —
     Move(2,3) itself stays undelivered. *)
  let certs =
    Multiset.of_list
      [ abs [ 2; 1 ]; abs [ 2; 2 ]; abs [ 2; 4 ]; abs [ 2; 10 ]; abs [ 2; 20 ] ]
  in
  check_bool "certificates are in 10's buffer" true
    (Multiset.sub certs (Config.buffer_of c (v 10)));
  let c = step c (v 10) certs in
  let out = Config.outputs t.Transducer.schema c in
  let expected = Query.apply Zoo.winmove winmove_input in
  check_bool "premature output happened" false (Instance.is_empty out);
  check_bool "and it is wrong" false (Instance.subset out expected);
  check_bool "specifically Win(1)" true
    (Instance.mem (Fact.make "Win" [ v 1 ]) out)

(* ------------------------------------------------------------------ *)
(* Datalog-specified transducers (declarative networking) *)

(* Transitive closure as a declarative transducer: rules produce into the
   prefixed relations Out_T / Ins_Got_E / Snd_Msg_E. *)
let datalog_tc_transducer =
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("T", 2) ])
      ~message:(Schema.of_list [ ("Msg_E", 2) ])
      ~memory:(Schema.of_list [ ("Got_E", 2) ])
      ()
  in
  Transducer.of_datalog ~schema
    ~out:
      "K(x,y) :- E(x,y).  K(x,y) :- Got_E(x,y).  K(x,y) :- Msg_E(x,y).\n\
       Out_T(x,y) :- K(x,y).  Out_T(x,z) :- Out_T(x,y), K(y,z)."
    ~ins:
      "Ins_Got_E(x,y) :- E(x,y).  Ins_Got_E(x,y) :- Msg_E(x,y).\n\
       Ins_Got_E(x,y) :- Got_E(x,y)."
    ~snd:"Snd_Msg_E(x,y) :- E(x,y)."
    ()

let test_datalog_transducer_computes_tc () =
  let verdict =
    Netquery.check ~variant:Config.policy_aware
      ~transducer:datalog_tc_transducer ~query:Zoo.tc ~input:tc_input net12
  in
  check_bool
    (Printf.sprintf "consistent (mismatches: %s)"
       (String.concat "," verdict.Netquery.mismatches))
    true
    (Netquery.consistent verdict)

let test_datalog_transducer_memory_deletion () =
  (* A declarative transducer using deletion: memory holds a Pending
     marker per locally-stored edge until the edge has been broadcast
     once; the deletion rule clears it. *)
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("O", 2) ])
      ~message:(Schema.of_list [ ("Msg_E", 2) ])
      ~memory:(Schema.of_list [ ("Pending", 2); ("Sent", 2) ])
      ()
  in
  let t =
    Transducer.of_datalog ~schema
      ~ins:
        "Ins_Pending(x,y) :- E(x,y), not Sent(x,y).\n\
         Ins_Sent(x,y) :- Pending(x,y)."
      ~del:"Del_Pending(x,y) :- Pending(x,y)."
      ~snd:"Snd_Msg_E(x,y) :- Pending(x,y)."
      ()
  in
  let policy = Policy.single graph net12 (v 1) in
  let c0 = Config.start net12 in
  let step c =
    fst
      (Config.heartbeat ~variant:Config.policy_aware ~policy ~transducer:t
         ~input:input12 c ~node:(v 1))
  in
  let c1 = step c0 in
  check_bool "pending set after first beat" true
    (Instance.exists
       (fun f -> Fact.rel f = "Pending")
       (Config.state_of c1 (v 1)));
  let c2 = step c1 in
  (* Second beat: Pending was present, so edges are broadcast and marked
     Sent; the deletion rule clears Pending. *)
  check_bool "messages broadcast" false
    (Multiset.is_empty (Config.buffer_of c2 (v 2)));
  let c3 = step c2 in
  check_bool "pending cleared eventually" false
    (Instance.exists
       (fun f -> Fact.rel f = "Pending")
       (Config.state_of c3 (v 1)));
  check_bool "sent retained" true
    (Instance.exists (fun f -> Fact.rel f = "Sent") (Config.state_of c3 (v 1)))

let test_datalog_transducer_rejects_bad_source () =
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("T", 2) ])
      ()
  in
  match Transducer.of_datalog ~schema ~out:"Out_T(x,y) :- " () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected parse failure"

(* ------------------------------------------------------------------ *)
(* Coordination-freeness witnesses (Definition 3) *)

let test_netquery_verdict_shape () =
  (* A failing check names the offending policy/scheduler combinations. *)
  let t = Strategies.Broadcast.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.comp_tc ~input:tc_input net12
  in
  check_bool "not consistent" false (Netquery.consistent verdict);
  check_bool "labels have the policy/scheduler form" true
    (List.for_all
       (fun label -> String.contains label '/')
       verdict.Netquery.mismatches);
  check_int "runs = policies x schedulers" 15
    (List.length verdict.Netquery.runs);
  check_bool "expected is Q(I)" true
    (Instance.equal verdict.Netquery.expected
       (Query.apply Zoo.comp_tc tc_input))

let test_heartbeat_witness_broadcast () =
  let t = Strategies.Broadcast.transducer Zoo.tc in
  match
    Coordination.heartbeat_witness ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.tc ~input:tc_input net12
  with
  | Some w ->
    check_bool "no deliveries in prefix" true
      (w.Coordination.result.Run.deliveries = 0)
  | None -> Alcotest.fail "expected a witness"

let test_heartbeat_witness_absence () =
  let t = Strategies.Absence.transducer Zoo.comp_tc in
  check_bool "witness exists" true
    (Coordination.heartbeat_witness ~variant:Config.policy_aware
       ~transducer:t ~query:Zoo.comp_tc ~input:tc_input net12
    <> None)

let test_heartbeat_witness_domain_request () =
  let t = Strategies.Domain_request.transducer Zoo.winmove in
  check_bool "witness exists" true
    (Coordination.heartbeat_witness ~variant:Config.policy_aware
       ~transducer:t ~query:Zoo.winmove ~input:winmove_input net12
    <> None)

let test_coordination_free_summary () =
  let t = Strategies.Broadcast.transducer Zoo.tc in
  check_bool "broadcast/tc coordination-free" true
    (Coordination.is_coordination_free_on ~variant:Config.policy_aware
       ~transducer:t ~query:Zoo.tc
       ~inputs:[ Instance.empty; tc_input ]
       net12)

(* ------------------------------------------------------------------ *)
(* Three-node network sanity *)

let net123 = Distributed.network_of_ints [ 1; 2; 3 ]

let test_three_nodes () =
  let t = Strategies.Absence.transducer Zoo.comp_tc in
  let verdict =
    Netquery.check ~variant:Config.policy_aware ~transducer:t
      ~query:Zoo.comp_tc
      ~input:(Instance.of_list [ e 1 2; e 2 3 ])
      ~schedulers:
        [
          ("round-robin", Run.Round_robin);
          ("random", Run.Random { seed = 11; steps = 50 });
        ]
      net123
  in
  check_bool "consistent on 3 nodes" true (Netquery.consistent verdict)

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration (bounded model checking) *)

let parity_policy =
  (* first attribute odd -> node 1, even -> node 2: deterministic
     placement for the exploration tests. *)
  Policy.make ~name:"parity" graph net12 (fun f ->
      match Fact.arg f 0 with
      | Value.Int a when a mod 2 = 1 -> [ v 1 ]
      | _ -> [ v 2 ])

let test_explore_broadcast_consistent () =
  let input = Instance.of_list [ e 1 2; e 2 3 ] in
  let verdict =
    Explore.check ~variant:Config.oblivious ~policy:parity_policy
      ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
      ~query:Zoo.tc ~input ()
  in
  match verdict with
  | Explore.Consistent { configs } ->
    check_bool "explored more than a handful" true (configs > 10)
  | v -> Alcotest.fail (Explore.verdict_to_string v)

let comp_edges_for_explore =
  Query.make ~name:"comp-edges" ~input:graph
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let test_explore_finds_wrong_output () =
  (* E(1,2) at node 1 and E(2,1) at node 2: node 1's partial view makes
     it output O(2,1), which the full input forbids. *)
  let input = Instance.of_list [ e 1 2; e 2 1 ] in
  let verdict =
    Explore.check ~variant:Config.policy_aware ~policy:parity_policy
      ~transducer:(Strategies.Broadcast.transducer comp_edges_for_explore)
      ~query:comp_edges_for_explore ~input ()
  in
  match verdict with
  | Explore.Wrong_output { extra; _ } ->
    check_bool "an O fact" true (Fact.rel extra = "O")
  | v -> Alcotest.fail ("expected wrong output, got " ^ Explore.verdict_to_string v)

let test_explore_finds_starvation () =
  (* A transducer that only outputs facts received as messages — but
     never sends any: it quiesces with the output missing. *)
  let identity_query =
    Query.make ~name:"identity" ~input:graph
      ~output:(Schema.of_list [ ("O", 2) ])
      (fun i -> rename_to "O" (Instance.restrict_rels i [ "E" ]))
  in
  let starving =
    Transducer.make ~schema:echo_schema
      ~out:(fun d -> rename_to "O" (Instance.restrict_rels d [ "Msg_E" ]))
      ()
  in
  let input = Instance.of_list [ e 1 2 ] in
  let verdict =
    Explore.check ~variant:Config.policy_aware ~policy:parity_policy
      ~transducer:starving ~query:identity_query ~input ()
  in
  match verdict with
  | Explore.Stuck { missing; _ } ->
    check_bool "an O fact missing" true (Fact.rel missing = "O")
  | v -> Alcotest.fail ("expected stuck, got " ^ Explore.verdict_to_string v)

let test_explore_absence_consistent () =
  let input = Instance.of_list [ e 1 2 ] in
  let verdict =
    Explore.check ~max_configs:50_000 ~variant:Config.policy_aware
      ~policy:parity_policy
      ~transducer:(Strategies.Absence.transducer comp_edges_for_explore)
      ~query:comp_edges_for_explore ~input ()
  in
  match verdict with
  | Explore.Consistent _ -> ()
  | v -> Alcotest.fail (Explore.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Theorem 4.5 proof technique: All-free indistinguishability *)

let comp_edges_query =
  Query.make ~name:"comp-edges" ~input:graph
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let test_all_free_indistinguishability () =
  (* Without All, node x cannot tell a single-node network from a
     two-node network whose second node holds only the domain-distinct
     extension: its heartbeat-prefix states coincide (the core of the
     proof of Theorem 4.5 / A1 ⊆ Mdistinct). *)
  let t = Strategies.Absence.transducer comp_edges_query in
  let i = Instance.of_list [ e 1 2; e 2 3 ] in
  let j = Instance.of_list [ e 7 8 ] in
  let x = v 101 and y = v 102 in
  let single_net = Distributed.network_of_ints [ 101 ] in
  let p1 = Policy.single graph single_net x in
  let r1 =
    Run.heartbeat_prefix ~variant:Config.all_free ~policy:p1 ~transducer:t
      ~input:i ~node:x ()
  in
  let two_net = Distributed.network_of_ints [ 101; 102 ] in
  let p2 =
    Policy.override ~name:"j-to-y"
      ~on:(fun f -> Instance.mem f j)
      ~to_:[ y ]
      (Policy.single graph two_net x)
  in
  let r2 =
    Run.heartbeat_prefix ~variant:Config.all_free ~policy:p2 ~transducer:t
      ~input:(Instance.union i j) ~node:x ()
  in
  check_bool "x's states coincide" true
    (Instance.equal
       (Config.state_of r1.Run.config x)
       (Config.state_of r2.Run.config x));
  check_bool "x outputs Q(I) in both" true
    (Instance.equal r1.Run.outputs (Query.apply comp_edges_query i)
    && Instance.equal r2.Run.outputs (Query.apply comp_edges_query i));
  (* And with All visible the states differ: x sees node y. *)
  let r1' =
    Run.heartbeat_prefix ~variant:Config.policy_aware ~policy:p1 ~transducer:t
      ~input:i ~node:x ()
  in
  let r2' =
    Run.heartbeat_prefix ~variant:Config.policy_aware ~policy:p2 ~transducer:t
      ~input:(Instance.union i j) ~node:x ()
  in
  check_bool "with All the views differ" false
    (Instance.equal
       (Config.state_of r1'.Run.config x)
       (Config.state_of r2'.Run.config x))

let test_network_genericity () =
  (* Permuting the input permutes the distributed outputs: the simulator
     introduces no constants (run under a permutation-respecting single
     policy). *)
  let t = Strategies.Broadcast.transducer Zoo.tc in
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let pi =
    Homomorphism.random_permutation ~seed:5 (Instance.adom input)
  in
  let out_of i =
    let policy = Policy.single graph net12 (v 1) in
    (Run.run ~variant:Config.oblivious ~policy ~transducer:t ~input:i
       Run.Round_robin)
      .Run.outputs
  in
  check_bool "Q(pi I) = pi Q(I) through the network" true
    (Instance.equal
       (out_of (Homomorphism.apply pi input))
       (Homomorphism.apply pi (out_of input)))

(* ------------------------------------------------------------------ *)
(* Causal clocks, provenance, and empirical coordination *)

let traced_run ~variant ~policy ~transducer ~input sched =
  let tracer = Trace.collector () in
  let r = Run.run ~tracer ~variant ~policy ~transducer ~input sched in
  (r, Trace.events tracer)

(* Check the vector-clock laws on one recorded trace: hb is a strict
   partial order that contains program order, Lamport clocks and trace
   order are linear extensions of it, and — the strong claim — hb as
   decided by the vector clocks coincides with the transitive closure of
   the explicit program-order and message (origin) edges. *)
let check_causal_laws name events =
  check_bool (name ^ ": trace nonempty") true (events <> []);
  let arr = Array.of_list events in
  let n = Array.length arr in
  let stamp i = Trace.stamp arr.(i) in
  (* Explicit happens-before edges from the trace itself. *)
  let edge = Array.make_matrix n n false in
  let last : (Value.t, int) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun i (ev : Trace.event) ->
      check_bool (name ^ ": indexes are 1-based positions") true
        (ev.Trace.index = i + 1);
      (match Hashtbl.find_opt last ev.Trace.node with
      | Some j -> edge.(j).(i) <- true
      | None -> ());
      Hashtbl.replace last ev.Trace.node i;
      List.iter (fun (_, o) -> edge.(o - 1).(i) <- true) ev.Trace.origins)
    arr;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if edge.(i).(k) then
        for j = 0 to n - 1 do
          if edge.(k).(j) then edge.(i).(j) <- true
        done
    done
  done;
  let ok_closure = ref true and ok_order = ref true in
  for i = 0 to n - 1 do
    let si = stamp i in
    if Causal.hb si si then ok_order := false;
    for j = 0 to n - 1 do
      let sj = stamp j in
      if Causal.hb si sj <> edge.(i).(j) then ok_closure := false;
      if Causal.hb si sj then begin
        (* strictness + the two linear extensions *)
        if Causal.hb sj si then ok_order := false;
        if i >= j then ok_order := false;
        if si.Causal.lamport >= sj.Causal.lamport then ok_order := false;
        if Causal.concurrent si sj then ok_order := false
      end
    done
  done;
  check_bool (name ^ ": hb = closure of program+message edges") true
    !ok_closure;
  check_bool
    (name ^ ": hb strict; trace order and lamport are linear extensions")
    true !ok_order;
  (* The vector support names exactly the nodes of the causal past. *)
  let ok_support = ref true in
  for i = 0 to n - 1 do
    let expected = ref Value.Set.empty in
    for j = 0 to n - 1 do
      if j = i || edge.(j).(i) then
        expected := Value.Set.add arr.(j).Trace.node !expected
    done;
    if
      not
        (Value.Set.equal !expected
           (Value.Set.of_list (Causal.support (stamp i).Causal.vector)))
    then ok_support := false
  done;
  check_bool (name ^ ": vector support = nodes of the causal past") true
    !ok_support

let causal_zoo_cases =
  let tc_input = Instance.of_list [ e 1 2; e 2 3; e 3 4 ] in
  let game = Instance.of_strings [ "Move(1,2)"; "Move(2,3)"; "Move(3,4)" ] in
  [
    ( "broadcast/tc",
      Strategies.Broadcast.transducer Zoo.tc,
      Zoo.tc, Config.oblivious, Policy.hash_fact graph net12, tc_input );
    ( "absence/comp-tc",
      Strategies.Absence.transducer Zoo.comp_tc,
      Zoo.comp_tc, Config.policy_aware, Policy.hash_fact graph net12,
      Instance.of_list [ e 1 2; e 2 3 ] );
    ( "domain-request/comp-tc",
      Strategies.Domain_request.transducer Zoo.comp_tc,
      Zoo.comp_tc, Config.policy_aware, Policy.hash_value graph net12,
      Instance.of_list [ e 1 2; e 2 3 ] );
    ( "domain-request/winmove",
      Strategies.Domain_request.transducer Zoo.winmove,
      Zoo.winmove, Config.policy_aware,
      Policy.hash_value Zoo.winmove.Query.input net12, game );
  ]

let test_vector_clock_laws () =
  List.iter
    (fun (name, transducer, _query, variant, policy, input) ->
      List.iter
        (fun (sname, sched) ->
          let _, events = traced_run ~variant ~policy ~transducer ~input sched in
          check_causal_laws (name ^ "/" ^ sname) events)
        [
          ("rr", Run.Round_robin);
          ("random", Run.Random { seed = 11; steps = 60 });
        ])
    causal_zoo_cases

let test_provenance_replay_validates () =
  List.iter
    (fun (name, transducer, query, variant, policy, input) ->
      let r, events = traced_run ~variant ~policy ~transducer ~input
          Run.Round_robin
      in
      check_bool (name ^ ": quiesced") true r.Run.quiesced;
      check_bool (name ^ ": correct") true
        (Instance.equal r.Run.outputs (Query.apply query input));
      check_bool (name ^ ": has outputs to explain") false
        (Instance.is_empty r.Run.outputs);
      Instance.iter
        (fun fact ->
          match Provenance.cone_of events fact with
          | None ->
            Alcotest.failf "%s: no cone for %s" name (Fact.to_string fact)
          | Some cone ->
            check_bool (name ^ ": anchor outputs the fact") true
              (List.exists (Fact.equal fact)
                 cone.Provenance.anchor.Trace.output_delta);
            (match
               Provenance.validate ~variant ~policy ~transducer ~input cone
             with
            | Ok () -> ()
            | Error m ->
              Alcotest.failf "%s: cone of %s fails replay: %s" name
                (Fact.to_string fact) m))
        r.Run.outputs)
    causal_zoo_cases

let test_provenance_rejects_truncated_cone () =
  (* Dropping the origin of a delivered copy must break the replay: the
     delivery can no longer be matched to a pending send. *)
  let variant = Config.policy_aware in
  let transducer = Strategies.Domain_request.transducer Zoo.comp_tc in
  let policy = Policy.hash_value graph net12 in
  let input = Instance.of_list [ e 1 2; e 2 3 ] in
  let r, events = traced_run ~variant ~policy ~transducer ~input
      Run.Round_robin
  in
  let broken = ref 0 in
  Instance.iter
    (fun fact ->
      match Provenance.cone_of events fact with
      | None -> ()
      | Some cone ->
        (match cone.Provenance.anchor.Trace.origins with
        | [] -> ()
        | (_, o) :: _ ->
          let truncated =
            {
              cone with
              Provenance.events =
                List.filter
                  (fun (ev : Trace.event) -> ev.Trace.index <> o)
                  cone.Provenance.events;
            }
          in
          incr broken;
          check_bool
            (Fact.to_string fact ^ ": truncated cone fails validation")
            true
            (Result.is_error
               (Provenance.validate ~variant ~policy ~transducer ~input
                  truncated))))
    r.Run.outputs;
  check_bool "some cone actually exercised the negative path" true
    (!broken > 0)

let test_detect_winmove_policies () =
  (* The "sometimes coordinated" query: good placements give cut-free
     runs, the scattering placement forces every win's cone to span the
     network. *)
  let net3 = Distributed.network_of_ints [ 1; 2; 3 ] in
  let input = Instance.of_strings [ "Move(1,2)"; "Move(2,3)"; "Move(3,4)" ] in
  let transducer = Strategies.Domain_request.transducer Zoo.winmove in
  let schema = Zoo.winmove.Query.input in
  let coordinated policy =
    let r, events =
      traced_run ~variant:Config.policy_aware ~policy ~transducer ~input
        Run.Round_robin
    in
    check_bool (Policy.name policy ^ ": quiesced") true r.Run.quiesced;
    check_bool (Policy.name policy ^ ": correct") true
      (Instance.equal r.Run.outputs (Query.apply Zoo.winmove input));
    let report = Detect.analyze ~network:net3 events in
    check_bool (Policy.name policy ^ ": report covers all outputs") true
      (List.length report.Detect.facts = Instance.cardinal r.Run.outputs);
    report.Detect.coordinated
  in
  check_bool "replicate-all run has no heard-from-all cut" false
    (coordinated (Policy.replicate_all schema net3));
  check_bool "single-node run has no heard-from-all cut" false
    (coordinated (Policy.single schema net3 (v 1)));
  check_bool "scatter run is empirically coordinated" true
    (coordinated (Calm_core.Empirical.scatter_policy schema net3))

let test_sweep_traces_jobs_identical () =
  let input = Instance.of_list [ e 1 2; e 2 3; e 3 4 ] in
  let transducer = Strategies.Broadcast.transducer Zoo.tc in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun (sname, sched) ->
            (Policy.name policy ^ "/" ^ sname, policy, sched))
          Netquery.default_schedulers)
      (Netquery.default_policies graph net12)
  in
  let jsonl jobs =
    let results =
      Run.sweep ~jobs ~variant:Config.policy_aware ~transducer ~input cells
    in
    Trace.sweep_to_jsonl (List.map (fun (l, _, ev) -> (l, ev)) results)
  in
  let baseline = jsonl 1 in
  check_bool "export nonempty" true (String.length baseline > 0);
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "causal JSONL at jobs=%d byte-identical to jobs=1"
           jobs)
        true
        (String.equal baseline (jsonl jobs)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 0 6 in
    let* edges = list_size (return n) (pair (int_range 0 4) (int_range 0 4)) in
    return (Graph_gen.of_edges edges))

let all_policies = Netquery.default_policies graph net12

let prop_dist_preserves_global =
  QCheck2.Test.make ~name:"dist_P(I) reassembles to I" ~count:150 gen_graph
    (fun i ->
      List.for_all
        (fun p -> Instance.equal (Distributed.global (Policy.dist p i)) i)
        all_policies)

let prop_dist_placement_matches_assign =
  QCheck2.Test.make ~name:"fact at node iff node in P(f)" ~count:100 gen_graph
    (fun i ->
      List.for_all
        (fun p ->
          let h = Policy.dist p i in
          Instance.for_all
            (fun f ->
              List.for_all
                (fun x ->
                  Instance.mem f (Distributed.local h x)
                  = Policy.responsible p x f)
                net12)
            i)
        all_policies)

let prop_domain_guided_assign_is_union_of_alpha =
  QCheck2.Test.make ~name:"domain-guided: P(f) = union of alpha(a)" ~count:100
    gen_graph (fun i ->
      let p = Policy.hash_value graph net12 in
      match Policy.domain_assignment p with
      | None -> false
      | Some alpha ->
        Instance.for_all
          (fun f ->
            let via_alpha =
              Value.Set.fold
                (fun a acc -> alpha a @ acc)
                (Fact.adom f) []
              |> List.sort_uniq Value.compare
            in
            via_alpha = Policy.assign p f)
          i)

let prop_absence_confluent_on_random_inputs =
  QCheck2.Test.make ~name:"absence/comp-tc correct on random inputs & seeds"
    ~count:12 gen_graph (fun input ->
      let t = Strategies.Absence.transducer Zoo.comp_tc in
      let expected = Query.apply Zoo.comp_tc input in
      let policy = Policy.hash_fact graph net12 in
      List.for_all
        (fun sched ->
          let r =
            Run.run ~variant:Config.policy_aware ~policy ~transducer:t ~input
              sched
          in
          r.Run.quiesced && Instance.equal r.Run.outputs expected)
        [
          Run.Round_robin;
          Run.Random { seed = 5; steps = 40 };
          Run.Stingy { seed = 6; steps = 60 };
        ])

let prop_broadcast_confluent_on_random_inputs =
  QCheck2.Test.make ~name:"broadcast/tc correct on random inputs & seeds"
    ~count:20 gen_graph (fun input ->
      let t = Strategies.Broadcast.transducer Zoo.tc in
      let expected = Query.apply Zoo.tc input in
      let policy = Policy.hash_value graph net12 in
      List.for_all
        (fun seed ->
          let r =
            Run.run ~variant:Config.oblivious ~policy ~transducer:t ~input
              (Run.Random { seed; steps = 30 })
          in
          r.Run.quiesced && Instance.equal r.Run.outputs expected)
        [ 1; 2; 3 ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dist_preserves_global;
      prop_dist_placement_matches_assign;
      prop_domain_guided_assign_is_union_of_alpha;
      prop_absence_confluent_on_random_inputs;
      prop_broadcast_confluent_on_random_inputs;
    ]

let () =
  Alcotest.run "network"
    [
      ( "policy",
        [
          Alcotest.test_case "example 4.1 P1" `Quick test_example_41_p1;
          Alcotest.test_case "example 4.1 P2" `Quick test_example_41_p2;
          Alcotest.test_case "constructors" `Quick test_policy_constructors;
          Alcotest.test_case "override" `Quick test_policy_override;
          Alcotest.test_case "schema guard" `Quick test_policy_schema_guard;
        ] );
      ( "schema",
        [
          Alcotest.test_case "system schema" `Quick test_schema_system;
          Alcotest.test_case "disjointness" `Quick test_schema_disjointness;
        ] );
      ( "config",
        [
          Alcotest.test_case "basic transition" `Quick test_transition_basic;
          Alcotest.test_case "delivery and memory" `Quick
            test_transition_delivery_and_memory;
          Alcotest.test_case "submultiset guard" `Quick
            test_transition_submultiset_guard;
          Alcotest.test_case "insert/delete semantics" `Quick
            test_insert_delete_semantics;
          Alcotest.test_case "system facts per variant" `Quick
            test_system_facts_variants;
          Alcotest.test_case "policy rows over A only" `Quick
            test_policy_facts_restricted_to_adom;
        ] );
      ( "run",
        [
          Alcotest.test_case "echo quiesces" `Quick test_run_echo_quiesces;
          Alcotest.test_case "schedulers agree" `Quick test_run_schedulers_agree;
          Alcotest.test_case "trace collection" `Quick test_trace_collection;
          Alcotest.test_case "non-quiescing reported" `Quick
            test_run_non_quiescing_reports;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "broadcast computes TC" `Slow
            test_broadcast_computes_tc;
          Alcotest.test_case "broadcast oblivious" `Slow
            test_broadcast_works_obliviously;
          Alcotest.test_case "broadcast fails comp-TC" `Slow
            test_broadcast_fails_comp_tc;
          Alcotest.test_case "broadcast-delta computes TC" `Slow
            test_broadcast_delta_computes_tc;
          Alcotest.test_case "broadcast-delta sends less" `Quick
            test_broadcast_delta_sends_less;
          Alcotest.test_case "absence computes comp-TC" `Slow
            test_absence_computes_comp_tc;
          Alcotest.test_case "absence needs policy rels" `Slow
            test_absence_needs_policy_relations;
          Alcotest.test_case "absence works All-free" `Slow
            test_absence_all_free;
          Alcotest.test_case "domain-request computes win-move" `Slow
            test_domain_request_computes_winmove;
          Alcotest.test_case "domain-request computes comp-TC" `Slow
            test_domain_request_computes_comp_tc;
          Alcotest.test_case "domain-request works All-free" `Slow
            test_domain_request_all_free;
          Alcotest.test_case "absence unsound for win-move" `Slow
            test_absence_wrong_on_winmove_partition;
        ] );
      ( "datalog-transducer",
        [
          Alcotest.test_case "computes TC" `Slow
            test_datalog_transducer_computes_tc;
          Alcotest.test_case "memory deletion" `Quick
            test_datalog_transducer_memory_deletion;
          Alcotest.test_case "bad source rejected" `Quick
            test_datalog_transducer_rejects_bad_source;
        ] );
      ( "coordination",
        [
          Alcotest.test_case "netquery verdict shape" `Slow
            test_netquery_verdict_shape;
          Alcotest.test_case "witness: broadcast/tc" `Quick
            test_heartbeat_witness_broadcast;
          Alcotest.test_case "witness: absence/comp-tc" `Quick
            test_heartbeat_witness_absence;
          Alcotest.test_case "witness: domain-request/win-move" `Quick
            test_heartbeat_witness_domain_request;
          Alcotest.test_case "full coordination-freeness" `Slow
            test_coordination_free_summary;
        ] );
      ( "multi-node",
        [ Alcotest.test_case "three nodes" `Slow test_three_nodes ] );
      ( "explore",
        [
          Alcotest.test_case "broadcast consistent" `Slow
            test_explore_broadcast_consistent;
          Alcotest.test_case "finds wrong output" `Quick
            test_explore_finds_wrong_output;
          Alcotest.test_case "finds starvation" `Quick
            test_explore_finds_starvation;
          Alcotest.test_case "absence consistent" `Slow
            test_explore_absence_consistent;
        ] );
      ( "causal",
        [
          Alcotest.test_case "vector-clock laws" `Slow test_vector_clock_laws;
          Alcotest.test_case "provenance replay validates" `Slow
            test_provenance_replay_validates;
          Alcotest.test_case "truncated cone rejected" `Quick
            test_provenance_rejects_truncated_cone;
          Alcotest.test_case "win-move detector per policy" `Slow
            test_detect_winmove_policies;
          Alcotest.test_case "sweep traces byte-identical under jobs" `Slow
            test_sweep_traces_jobs_identical;
        ] );
      ( "theorem-4.5",
        [
          Alcotest.test_case "All-free indistinguishability" `Quick
            test_all_free_indistinguishability;
          Alcotest.test_case "genericity through the network" `Quick
            test_network_genericity;
        ] );
      ("properties", qcheck_cases);
    ]
