(* Unit tests for the evaluation-strategy plumbing: renaming helpers,
   system-relation accessors, and the completeness predicates of the
   Mdistinct and Mdisjoint strategies, on hand-crafted transition views
   [D]. The end-to-end behaviour is covered in test_network.ml. *)

open Relational
open Strategies
open Queries

let v = Value.int
let e a b = Graph_gen.edge a b
let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let instance_testable = Alcotest.testable Instance.pp Instance.equal

let graph = Graph_gen.schema
let net = Distributed.network_of_ints [ 1; 2 ]
let single_policy = Network.Policy.single graph net (v 1)

(* A hand-crafted D for node 1: local input, stored facts, delivered
   messages, and the policy-aware system facts over the A-set. *)
let craft_d ?(variant = Network.Config.policy_aware)
    ?(policy = single_policy) ~local ~mem ~msgs () =
  let j =
    Instance.union (Instance.of_list local)
      (Instance.union (Instance.of_list mem) (Instance.of_list msgs))
  in
  let a =
    List.fold_left
      (fun acc x -> Value.Set.add x acc)
      (Instance.adom j)
      (Distributed.network_of_ints [ 1; 2 ])
  in
  Instance.union j
    (Network.Config.system_facts variant policy
       (Distributed.network_of_ints [ 1; 2 ])
       (v 1) a)

(* ------------------------------------------------------------------ *)
(* Common *)

let test_rename_roundtrip () =
  let i = Instance.of_list [ e 1 2; e 3 4 ] in
  let renamed = Common.rename ~prefix:"Msg_" i in
  check_bool "renamed" true
    (Instance.for_all (fun f -> Fact.rel f = "Msg_E") renamed);
  Alcotest.check instance_testable "roundtrip" i
    (Common.unrename ~prefix:"Msg_" renamed);
  check_bool "unrename drops others" true
    (Instance.is_empty (Common.unrename ~prefix:"Got_" renamed))

let test_rename_schema () =
  let sg = Common.rename_schema ~prefix:"Got_" graph in
  Alcotest.(check (option int)) "Got_E/2" (Some 2) (Schema.arity sg "Got_E");
  check_bool "E gone" false (Schema.mem sg "E")

let test_my_id_and_adom () =
  let d = craft_d ~local:[ e 5 6 ] ~mem:[] ~msgs:[] () in
  check_bool "id" true (Common.my_id d = Some (v 1));
  let adom = Common.my_adom d in
  check_bool "has 5" true (Value.Set.mem (v 5) adom);
  check_bool "has node ids" true (Value.Set.mem (v 2) adom);
  (* No Id relation in the oblivious model. *)
  let d' =
    craft_d ~variant:Network.Config.oblivious ~local:[ e 5 6 ] ~mem:[]
      ~msgs:[] ()
  in
  check_bool "no id" true (Common.my_id d' = None)

let test_responsibility () =
  let d = craft_d ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  (* Node 1 holds everything under the single policy. *)
  check_bool "fact responsibility" true (Common.responsible_fact d (e 1 2));
  check_bool "value responsibility" true
    (Common.responsible_value graph d (v 2));
  (* Facts outside A have no policy row. *)
  check_bool "outside A" false (Common.responsible_fact d (e 77 78))

let test_responsibility_split_policy () =
  let policy =
    Network.Policy.make ~name:"parity" graph net (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ v 1 ]
        | _ -> [ v 2 ])
  in
  let d = craft_d ~policy ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  check_bool "odd first attr is mine" true (Common.responsible_fact d (e 1 1));
  check_bool "even first attr is not" false (Common.responsible_fact d (e 2 1))

(* ------------------------------------------------------------------ *)
(* Broadcast *)

let test_broadcast_known () =
  let d =
    craft_d ~local:[ e 1 2 ]
      ~mem:[ Fact.make "Got_E" [ v 3; v 4 ] ]
      ~msgs:[ Fact.make "Msg_E" [ v 5; v 6 ] ]
      ()
  in
  Alcotest.check instance_testable "assembled"
    (Instance.of_list [ e 1 2; e 3 4; e 5 6 ])
    (Broadcast.known graph d)

let test_broadcast_delta_snd () =
  (* The delta variant suppresses re-sends of facts marked Sent_E. *)
  let t = Broadcast_delta.transducer Zoo.tc in
  let d =
    craft_d ~local:[ e 1 2; e 3 4 ]
      ~mem:[ Fact.make "Sent_E" [ v 1; v 2 ] ]
      ~msgs:[] ()
  in
  let sent = t.Network.Transducer.q_snd d in
  Alcotest.check instance_testable "only the unsent fact"
    (Instance.of_list [ Fact.make "Msg_E" [ v 3; v 4 ] ])
    sent

(* ------------------------------------------------------------------ *)
(* Absence *)

let test_certified_absences () =
  (* Node 1 responsible for everything, holding E(1,2): every other
     E-fact over A = {1,2} is certifiably absent. *)
  let d = craft_d ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  let absences = Absence.certified_absences graph d in
  check_bool "E(2,1) certified" true (Instance.mem (e 2 1) absences);
  check_bool "E(1,2) not (present)" false (Instance.mem (e 1 2) absences);
  check_int "3 of 4 candidate facts" 3 (Instance.cardinal absences)

let test_absence_complete () =
  let d = craft_d ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  check_bool "complete when responsible for all" true
    (Absence.complete graph d);
  (* With a split policy, node 1 cannot certify even-first facts. *)
  let policy =
    Network.Policy.make ~name:"parity" graph net (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ v 1 ]
        | _ -> [ v 2 ])
  in
  let d' = craft_d ~policy ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  check_bool "incomplete without certificates" false
    (Absence.complete graph d');
  (* Certificates for the even-first facts restore completeness: the
     absent E-facts over A = {1,2} with even first value. *)
  let certs =
    [ Fact.make "Abs_E" [ v 2; v 1 ]; Fact.make "Abs_E" [ v 2; v 2 ] ]
  in
  let d'' = craft_d ~policy ~local:[ e 1 2 ] ~mem:certs ~msgs:[] () in
  check_bool "complete with certificates" true (Absence.complete graph d'')

(* ------------------------------------------------------------------ *)
(* Domain request *)

let test_domain_request_collected () =
  let d =
    craft_d ~local:[ e 1 2 ]
      ~mem:[ Fact.make "Got_E" [ v 3; v 4 ] ]
      ~msgs:[ Fact.make "FMsg_E" [ v 5; v 6 ] ]
      ()
  in
  Alcotest.check instance_testable "collected"
    (Instance.of_list [ e 1 2; e 3 4; e 5 6 ])
    (Domain_request.collected graph d)

let test_domain_request_complete () =
  (* Responsible for every value under the single policy: complete. *)
  let d = craft_d ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  check_bool "complete when responsible" true
    (Domain_request.complete graph d);
  (* Under a value-split policy node 1 owns odd values only; value 2 is
     unresolved until an OK arrives. *)
  let policy =
    Network.Policy.domain_guided ~name:"parity-values" graph net (fun value ->
        match value with
        | Value.Int a when a mod 2 = 1 -> [ v 1 ]
        | _ -> [ v 2 ])
  in
  let d' = craft_d ~policy ~local:[ e 1 2 ] ~mem:[] ~msgs:[] () in
  check_bool "incomplete without OK" false (Domain_request.complete graph d');
  let oks =
    [ Fact.make "GotOk" [ v 1; v 2 ] ]
  in
  let d'' = craft_d ~policy ~local:[ e 1 2 ] ~mem:oks ~msgs:[] () in
  check_bool "complete with OK" true (Domain_request.complete graph d'')

let () =
  Alcotest.run "strategies"
    [
      ( "common",
        [
          Alcotest.test_case "rename roundtrip" `Quick test_rename_roundtrip;
          Alcotest.test_case "rename schema" `Quick test_rename_schema;
          Alcotest.test_case "id and adom" `Quick test_my_id_and_adom;
          Alcotest.test_case "responsibility" `Quick test_responsibility;
          Alcotest.test_case "split responsibility" `Quick
            test_responsibility_split_policy;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "known" `Quick test_broadcast_known;
          Alcotest.test_case "delta snd" `Quick test_broadcast_delta_snd;
        ] );
      ( "absence",
        [
          Alcotest.test_case "certified absences" `Quick test_certified_absences;
          Alcotest.test_case "completeness" `Quick test_absence_complete;
        ] );
      ( "domain-request",
        [
          Alcotest.test_case "collected" `Quick test_domain_request_collected;
          Alcotest.test_case "completeness" `Quick test_domain_request_complete;
        ] );
    ]
