(* The parallel ≡ sequential test wall.

   Every parallel code path (Pool.map, Pool.search, the ?jobs paths of
   the membership checker, the model checker, and the sweep driver) is
   checked to agree verdict-for-verdict — certificates and counts
   included — with the sequential path it replaces, at jobs ∈ {1, 2, 4}.
   A regression test pins the determinism of the
   first-violation-in-enumeration-order selection. *)

open Relational
open Monotone
open Queries
open Parallel

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool.map ≡ List.map *)

let prop_map_pure =
  QCheck2.Test.make ~name:"Pool.map = List.map (pure functions)" ~count:60
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 0 5) (list (int_range (-50) 50)))
    (fun (jobs, k, xs) ->
      let f x = (x * x) + (k * x) - 7 in
      Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) = List.map f xs)

exception Boom of int

let prop_map_exceptions =
  QCheck2.Test.make
    ~name:"Pool.map = List.map (raising functions, first exception wins)"
    ~count:60
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 1 4) (list (int_range 0 30)))
    (fun (jobs, modulus, xs) ->
      let f x = if x mod modulus = 0 then raise (Boom x) else x + 1 in
      let outcome g = match g () with
        | ys -> Ok ys
        | exception Boom i -> Error i
      in
      outcome (fun () -> Pool.with_pool ~jobs (fun p -> Pool.map p f xs))
      = outcome (fun () -> List.map f xs))

let test_map_pool_survives_exception () =
  (* A raising map must not poison the pool: the same pool keeps
     serving parallel regions afterwards. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool (fun x -> if x = 3 then raise (Boom 3) else x)
               [ 1; 2; 3; 4; 5 ]
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 3 -> ());
      check_bool "pool still works" true
        (Pool.map pool (fun x -> x * 2) [ 1; 2; 3 ] = [ 2; 4; 6 ]);
      check_bool "and again" true
        (Pool.map pool string_of_int [ 7; 8 ] = [ "7"; "8" ]))

let prop_search_first_hit =
  QCheck2.Test.make
    ~name:"Pool.search = sequential scan (first hit, exhausted count)"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 4) (list (int_range 0 40)))
    (fun (jobs, xs) ->
      let f x = if x mod 7 = 0 then Some (x * 10) else None in
      let sequential =
        match List.find_map f xs with
        | Some b -> Pool.Found b
        | None -> Pool.Exhausted (List.length xs)
      in
      Pool.with_pool ~jobs (fun pool -> Pool.search pool f (List.to_seq xs))
      = sequential)

(* ------------------------------------------------------------------ *)
(* Checker equivalence across the query zoo *)

let violation_equal (a : Classes.violation) (b : Classes.violation) =
  a.Classes.kind = b.Classes.kind
  && a.Classes.bound = b.Classes.bound
  && Instance.equal a.Classes.base b.Classes.base
  && Instance.equal a.Classes.extension b.Classes.extension
  && Fact.equal a.Classes.missing b.Classes.missing

let outcome_equal a b =
  match (a, b) with
  | Checker.No_violation { pairs = p }, Checker.No_violation { pairs = q } ->
    p = q
  | Checker.Violated u, Checker.Violated v -> violation_equal u v
  | _ -> false

let small = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

let zoo =
  [
    ("tc", Zoo.tc);
    ("comp-tc", Zoo.comp_tc);
    ("q-clique-3", Zoo.q_clique 3);
    ("q-star-2", Zoo.q_star 2);
    ("q-duplicate-2", Zoo.q_duplicate 2);
    ("triangles-unless-2-disjoint", Zoo.triangles_unless_two_disjoint);
    ("win-move", Zoo.winmove);
    ("win-move-doubled", Zoo.winmove_doubled);
  ]

let test_checker_zoo_equivalence () =
  List.iter
    (fun (name, q) ->
      let bounds =
        (* Win-move enumerates over the Move schema; keep the widest
           queries inside test-time budgets without losing violations. *)
        if name = "win-move" || name = "win-move-doubled" then
          { small with Checker.max_base = 2 }
        else small
      in
      List.iter
        (fun kind ->
          let seq = Checker.check_exhaustive ~bounds kind q in
          List.iter
            (fun jobs ->
              let par = Checker.check_exhaustive ~bounds ~jobs kind q in
              check_bool
                (Printf.sprintf "%s/%s at jobs=%d" name
                   (Classes.kind_to_string kind) jobs)
                true (outcome_equal seq par))
            job_counts)
        [ Classes.Plain; Classes.Distinct; Classes.Disjoint ])
    zoo

let test_checker_random_equivalence () =
  (* The randomized checker draws its pair stream from a seeded RNG in
     enumeration order, so it too is jobs-independent. *)
  List.iter
    (fun jobs ->
      let seq = Checker.check_random ~trials:300 Classes.Distinct Zoo.comp_tc in
      let par =
        Checker.check_random ~trials:300 ~jobs Classes.Distinct Zoo.comp_tc
      in
      check_bool (Printf.sprintf "random checker at jobs=%d" jobs) true
        (outcome_equal seq par))
    job_counts

(* ------------------------------------------------------------------ *)
(* Determinism regression: first-in-enumeration-order selection *)

let test_parallel_certificate_deterministic () =
  let certificate () =
    match
      Checker.check_exhaustive ~bounds:small ~jobs:4 Classes.Distinct
        Zoo.comp_tc
    with
    | Checker.No_violation _ -> Alcotest.fail "expected a violation"
    | Checker.Violated v ->
      Format.asprintf "%a" Classes.pp_violation (Shrink.shrink Zoo.comp_tc v)
  in
  let first = certificate () in
  for i = 2 to 10 do
    Alcotest.(check string) (Printf.sprintf "run %d" i) first (certificate ())
  done;
  (* And the parallel certificate is the sequential one. *)
  match Checker.check_exhaustive ~bounds:small Classes.Distinct Zoo.comp_tc with
  | Checker.No_violation _ -> Alcotest.fail "expected a violation"
  | Checker.Violated v ->
    Alcotest.(check string) "matches sequential" first
      (Format.asprintf "%a" Classes.pp_violation (Shrink.shrink Zoo.comp_tc v))

(* ------------------------------------------------------------------ *)
(* Explore equivalence on the four E19 cells *)

let net2 = Distributed.network_of_ints [ 101; 102 ]

let comp_edges =
  Query.make ~name:"comp-edges" ~input:Graph_gen.schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let parity network a b =
  Network.Policy.make ~name:"parity" Graph_gen.schema network (fun f ->
      match Fact.arg f 0 with
      | Value.Int x when x mod 2 = 1 -> [ Value.Int a ]
      | _ -> [ Value.Int b ])

let e19_cells =
  let two_edges = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let crossed = Graph_gen.of_edges [ (1, 2); (2, 1) ] in
  let tiny_net = Distributed.network_of_ints [ 1; 2 ] in
  let one_move = Instance.of_strings [ "Move(5,6)" ] in
  [
    ( "broadcast/tc",
      (Strategies.Broadcast.transducer Zoo.tc, Zoo.tc, two_edges,
       Network.Config.oblivious, parity net2 101 102) );
    ( "broadcast/comp-edges",
      (Strategies.Broadcast.transducer comp_edges, comp_edges, crossed,
       Network.Config.policy_aware, parity net2 101 102) );
    ( "absence/comp-edges",
      (Strategies.Absence.transducer comp_edges, comp_edges,
       Graph_gen.of_edges [ (1, 2) ],
       Network.Config.policy_aware, parity tiny_net 1 2) );
    ( "domain-request/win-move",
      (Strategies.Domain_request.transducer Zoo.winmove, Zoo.winmove,
       one_move, Network.Config.policy_aware,
       Network.Policy.hash_value Zoo.winmove.Query.input net2) );
  ]

let verdict_equal a b =
  let open Network.Explore in
  match (a, b) with
  | Consistent { configs = x }, Consistent { configs = y } -> x = y
  | Wrong_output { extra = x; _ }, Wrong_output { extra = y; _ } ->
    Fact.equal x y
  | Stuck { missing = x; _ }, Stuck { missing = y; _ } -> Fact.equal x y
  | Out_of_budget { configs = x }, Out_of_budget { configs = y } -> x = y
  | _ -> false

let test_explore_equivalence () =
  List.iter
    (fun (name, (transducer, query, input, variant, policy)) ->
      let run ?jobs () =
        Network.Explore.check ~max_configs:60_000 ?jobs ~variant ~policy
          ~transducer ~query ~input ()
      in
      let seq = run () in
      List.iter
        (fun jobs ->
          check_bool (Printf.sprintf "%s at jobs=%d" name jobs) true
            (verdict_equal seq (run ~jobs ())))
        job_counts)
    e19_cells

(* ------------------------------------------------------------------ *)
(* Sweep equivalence: the policy x scheduler grid *)

let test_netquery_sweep_equivalence () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  let run ?jobs () =
    Network.Netquery.check ?jobs ~variant:Network.Config.policy_aware
      ~transducer:(Strategies.Absence.transducer comp_edges)
      ~query:comp_edges ~input net2
  in
  let seq = run () in
  List.iter
    (fun jobs ->
      let par = run ~jobs () in
      check_bool
        (Printf.sprintf "labels at jobs=%d" jobs)
        true
        (List.map fst seq.Network.Netquery.runs
        = List.map fst par.Network.Netquery.runs);
      check_bool
        (Printf.sprintf "outputs at jobs=%d" jobs)
        true
        (List.for_all2
           (fun (_, (a : Network.Run.result)) (_, (b : Network.Run.result)) ->
             Instance.equal a.Network.Run.outputs b.Network.Run.outputs
             && a.Network.Run.quiesced = b.Network.Run.quiesced
             && a.Network.Run.messages_sent = b.Network.Run.messages_sent
             && a.Network.Run.transitions = b.Network.Run.transitions)
           seq.Network.Netquery.runs par.Network.Netquery.runs);
      check_bool
        (Printf.sprintf "mismatches at jobs=%d" jobs)
        true
        (seq.Network.Netquery.mismatches = par.Network.Netquery.mismatches))
    job_counts

(* ------------------------------------------------------------------ *)
(* Pool plumbing *)

let test_pool_basics () =
  check_bool "default jobs >= 1" true (Pool.default_jobs () >= 1);
  Pool.with_pool ~jobs:3 (fun pool -> check_int "jobs" 3 (Pool.jobs pool));
  (* jobs <= 1 is clamped and spawns nothing. *)
  Pool.with_pool ~jobs:0 (fun pool ->
      check_int "clamped" 1 (Pool.jobs pool);
      check_bool "sequential map" true
        (Pool.map pool succ [ 1; 2 ] = [ 2; 3 ]))

let test_pool_map_empty_and_large () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_bool "empty" true (Pool.map pool succ [] = []);
      let xs = List.init 1000 Fun.id in
      check_bool "1000 elements ordered" true
        (Pool.map pool (fun x -> x * 3) xs = List.map (fun x -> x * 3) xs))

let test_search_cancellation_deterministic () =
  (* Many hits: always the first in enumeration order. *)
  let xs = List.init 500 Fun.id in
  Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 20 do
        match
          Pool.search pool
            (fun x -> if x >= 100 then Some x else None)
            (List.to_seq xs)
        with
        | Pool.Found 100 -> ()
        | Pool.Found x -> Alcotest.fail (Printf.sprintf "found %d" x)
        | Pool.Exhausted _ -> Alcotest.fail "exhausted"
      done)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_map_pure; prop_map_exceptions; prop_search_first_hit ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "basics" `Quick test_pool_basics;
          Alcotest.test_case "map empty/large" `Quick
            test_pool_map_empty_and_large;
          Alcotest.test_case "survives exceptions" `Quick
            test_map_pool_survives_exception;
          Alcotest.test_case "search cancellation" `Quick
            test_search_cancellation_deterministic;
        ] );
      ( "checker-wall",
        [
          Alcotest.test_case "zoo equivalence" `Slow
            test_checker_zoo_equivalence;
          Alcotest.test_case "random checker equivalence" `Slow
            test_checker_random_equivalence;
          Alcotest.test_case "certificate determinism (10x)" `Slow
            test_parallel_certificate_deterministic;
        ] );
      ( "explore-wall",
        [
          Alcotest.test_case "E19 cells equivalence" `Slow
            test_explore_equivalence;
        ] );
      ( "sweep-wall",
        [
          Alcotest.test_case "netquery grid equivalence" `Slow
            test_netquery_sweep_equivalence;
        ] );
      ("properties", qcheck_cases);
    ]
