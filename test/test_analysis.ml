(* The static-analysis layer: classify ≡ certify wall, independent
   certificate checking, lint diagnostics, and the span-threaded parser.

   The wall mirrors test_parallel's parallel ≡ sequential discipline: for
   every program in the query zoos and for qcheck-random programs, the
   fragment reported by [Fragment.classify] must equal the fragment of
   the certificate built by [Analysis.certify] — and the certificate must
   survive [Analysis.check_certificate], which validates the evidence by
   local inspection without re-running the classifier. *)

open Datalog
module A = Analysis

let zoo_sources =
  [
    ("tc", Queries.Zoo.tc_program);
    ("comp_tc", Queries.Zoo.comp_tc_program);
    ("example_51_p1", Queries.Zoo.example_51_p1);
    ("example_51_p2", Queries.Zoo.example_51_p2);
    ("winmove", Queries.Zoo.winmove_program);
    ("q_clique3", Queries.Zoo.q_clique3_program);
    ("q_star2", Queries.Zoo.q_star2_program);
    ("tagged_edges", Queries.Wilog_zoo.tagged_edges);
    ("sinks_of_sources", Queries.Wilog_zoo.sinks_of_sources);
    ("unsafe_leak", Queries.Wilog_zoo.unsafe_leak);
    ("divergent_counter", Queries.Wilog_zoo.divergent_counter);
  ]

let load src = Adom.augment (Parser.parse_program src)

let agree_on name rules =
  let classified = Fragment.classify rules in
  let cert = A.certify rules in
  Alcotest.(check string)
    (name ^ ": classify = certify")
    (Fragment.to_string classified)
    (Fragment.to_string cert.A.Certificate.fragment);
  match A.check_certificate rules cert with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: certificate rejected: %s" name msg

let test_wall_zoo () =
  List.iter (fun (name, src) -> agree_on name (load src)) zoo_sources

(* Hand-built programs pinning one certificate per Figure-2 fragment, so
   the wall provably exercises every constructor. *)
let fragment_examples =
  [
    (Fragment.Positive, "T(x,y) :- E(x,y). T(x,y) :- T(x,z), E(z,y).");
    (Fragment.Positive_ineq, "O(x,y) :- E(x,y), x != y.");
    (Fragment.Semi_positive, "O(x,y) :- E(x,y), not F(x,y).");
    ( Fragment.Connected_stratified,
      "S(x) :- E(x,x). O(x) :- Adom(x), not S(x)." );
    ( Fragment.Semi_connected_stratified,
      "S(x) :- E(x,x). O(x,y) :- Adom(x), Adom(y), not S(x)." );
    ( Fragment.Stratified,
      "T(x,y) :- E(x,y). NoQ(x) :- Adom(x), T(y,z). O(x) :- Adom(x), not \
       NoQ(x)." );
    (Fragment.Unstratifiable, "Win(x) :- Move(x,y), not Win(y).");
  ]

let test_wall_every_fragment () =
  List.iter
    (fun (expected, src) ->
      let rules = load src in
      let cert = A.certify rules in
      Alcotest.(check string)
        (Fragment.to_string expected ^ ": certified fragment")
        (Fragment.to_string expected)
        (Fragment.to_string cert.A.Certificate.fragment);
      agree_on (Fragment.to_string expected) rules)
    fragment_examples;
  (* ... and that list really is one example per constructor. *)
  Alcotest.(check (list string))
    "every Fragment constructor exercised"
    (List.map Fragment.to_string Fragment.all)
    (List.map (fun (f, _) -> Fragment.to_string f) fragment_examples)

(* Random programs across the whole hierarchy: idb negation and idb/idb
   recursion are allowed, so stratifiable, unstratifiable, connected and
   unconnected shapes all occur. *)
let gen_program =
  let open QCheck2.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let gen_rule =
    let* npos = int_range 1 3 in
    let* pos =
      list_size (return npos)
        (let* p = oneofl [ "A"; "B"; "P"; "Q" ] in
         let* t1 = oneofl vars in
         let* t2 = oneofl vars in
         return (Ast.atom p [ Ast.Var t1; Ast.Var t2 ]))
    in
    let pos_vars = List.concat_map Ast.vars_of_atom pos in
    let pvar = oneofl pos_vars in
    let* h1 = pvar in
    let* h2 = pvar in
    let* hp = oneofl [ "P"; "Q" ] in
    let* neg =
      list_size (int_range 0 2)
        (let* p = oneofl [ "A"; "B"; "P"; "Q" ] in
         let* t1 = pvar in
         let* t2 = pvar in
         return (Ast.atom p [ Ast.Var t1; Ast.Var t2 ]))
    in
    let* ineq =
      list_size (int_range 0 1)
        (let* t1 = pvar in
         let* t2 = pvar in
         return (Ast.Var t1, Ast.Var t2))
    in
    return { Ast.head = Ast.atom hp [ Ast.Var h1; Ast.Var h2 ]; pos; neg; ineq }
  in
  list_size (int_range 1 5) gen_rule

let prop_wall_random =
  QCheck2.Test.make ~name:"classify = certify (random programs)" ~count:300
    gen_program (fun rules ->
      let cert = A.certify rules in
      Fragment.classify rules = cert.A.Certificate.fragment
      &&
      match A.check_certificate rules cert with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "certificate rejected: %s" msg)

(* The checker is not a rubber stamp: tampering with a verified
   certificate must be caught. *)
let test_checker_rejects_tampering () =
  let rules = load "T(x,y) :- E(x,y). T(x,y) :- T(x,z), E(z,y)." in
  let cert = A.certify rules in
  List.iter
    (fun wrong ->
      match
        A.check_certificate rules { cert with A.Certificate.fragment = wrong }
      with
      | Ok () ->
        Alcotest.failf "checker accepted forged fragment %s"
          (Fragment.to_string wrong)
      | Error _ -> ())
    (List.filter (fun f -> f <> cert.A.Certificate.fragment) Fragment.all);
  (* A positive program's certificate claims no exclusions; smuggling the
     certificate of a different program must fail too. *)
  let other = load "O(x,y) :- E(x,y), not F(x,y)." in
  (match A.check_certificate other cert with
  | Ok () -> Alcotest.fail "checker accepted a certificate for another program"
  | Error _ -> ());
  match A.check_certificate rules (A.certify other) with
  | Ok () -> Alcotest.fail "checker accepted another program's certificate"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Fragment table *)

let test_fragment_table () =
  Alcotest.(check int) "seven fragments" 7 (List.length Fragment.all);
  List.iter
    (fun f ->
      let name = Fragment.to_string f in
      Alcotest.(check bool)
        (name ^ ": to_string/of_string roundtrip")
        true
        (Fragment.of_string name = Some f);
      Alcotest.(check bool)
        (name ^ ": upper bound tabulated")
        true
        (List.mem
           (Fragment.monotonicity_upper_bound f)
           [ "M"; "Mdistinct"; "Mdisjoint"; "C" ]))
    Fragment.all;
  Alcotest.(check int)
    "fragment names distinct" 7
    (List.length
       (List.sort_uniq String.compare (List.map Fragment.to_string Fragment.all)))

(* ------------------------------------------------------------------ *)
(* Parser spans and error reporting (satellite 1) *)

let test_syntax_error_column () =
  match Parser.parse_program "O(x :- E(x)." with
  | _ -> Alcotest.fail "expected a syntax error"
  | exception Parser.Syntax_error { line; col; message } ->
    Alcotest.(check int) "line" 1 line;
    Alcotest.(check int) "column" 5 col;
    Alcotest.(check bool)
      "message names the offending token" true
      (String.length message > 0
      &&
      let needle = "found ':-'" in
      let rec has i =
        i + String.length needle <= String.length message
        && (String.sub message i (String.length needle) = needle || has (i + 1))
      in
      has 0)

let test_located_spans () =
  let src = "T(x,y) :- E(x,y).\nO(x,y) :- T(x,y),\n  not E(x,y)." in
  match Parser.parse_program_located src with
  | [ r1; r2 ] ->
    Alcotest.(check string) "rule 1 span" "1:1-18" (Ast.Span.to_string r1.lspan);
    Alcotest.(check string) "rule 2 spans two lines" "2:1-3:14"
      (Ast.Span.to_string r2.lspan);
    Alcotest.(check string) "head span" "2:1-7"
      (Ast.Span.to_string r2.lhead.span);
    Alcotest.(check string) "pos literal span" "2:11-17"
      (Ast.Span.to_string (Ast.pos_span r2 0));
    Alcotest.(check string) "neg literal spans the 'not'" "3:3-13"
      (Ast.Span.to_string (Ast.neg_span r2 0));
    Alcotest.(check bool) "out of range is dummy" true
      (Ast.Span.is_dummy (Ast.neg_span r1 0))
  | _ -> Alcotest.fail "expected two rules"

(* ------------------------------------------------------------------ *)
(* Lint engine *)

let codes_of ds = List.map (fun d -> d.A.Diagnostic.code) ds

let test_lint_clean () =
  let ds = A.Lint.lint_source "T(x,y) :- E(x,y). T(x,y) :- T(x,z), E(z,y)." in
  Alcotest.(check (list string)) "no diagnostics" [] (codes_of ds)

let test_lint_codes_are_registered () =
  (* Over all fixtures the engine emits only registered codes; makes sure
     the registry and the engine cannot drift apart. *)
  List.iter
    (fun (_, src) ->
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (d.A.Diagnostic.code ^ " registered")
            true
            (List.mem_assoc d.A.Diagnostic.code A.Diagnostic.codes))
        (A.Lint.lint_source src))
    (zoo_sources @ List.map (fun (f, s) -> (Fragment.to_string f, s)) fragment_examples)

let test_lint_unsafe_variable () =
  let ds = A.Lint.lint_source "O(x,y) :- E(x)." in
  match ds with
  | [ d ] ->
    Alcotest.(check string) "code" "CALM001" d.A.Diagnostic.code;
    Alcotest.(check string) "span is the head" "1:1-7"
      (Ast.Span.to_string d.A.Diagnostic.span)
  | _ -> Alcotest.failf "expected exactly CALM001, got [%s]"
           (String.concat "; " (codes_of ds))

let test_lint_syntax_error_span () =
  match A.Lint.lint_source "O(x) :- E(x)" with
  | [ d ] ->
    Alcotest.(check string) "code" "CALM000" d.A.Diagnostic.code;
    Alcotest.(check bool) "span is real" false
      (Ast.Span.is_dummy d.A.Diagnostic.span)
  | ds -> Alcotest.failf "expected exactly CALM000, got [%s]"
            (String.concat "; " (codes_of ds))

let test_lint_pragma_claim () =
  let src = "% calm-lint: claim=datalog\nO(x,y) :- E(x,y), not F(x,y).\n" in
  let codes = codes_of (A.Lint.lint_source src) in
  Alcotest.(check bool) "claim violation surfaced" true
    (List.mem "CALM013" codes);
  let ok = "% calm-lint: claim=sp\nO(x,y) :- E(x,y), not F(x,y).\n" in
  Alcotest.(check bool) "satisfied claim silent" false
    (List.mem "CALM013" (codes_of (A.Lint.lint_source ok)))

let test_lint_fixit () =
  let ds = A.Lint.lint_source "T(*,x) :- E(x).\nO(x) :- T(*,x)." in
  let fixits =
    List.concat_map (fun d -> d.A.Diagnostic.fixits) ds
    |> List.map (fun f -> f.A.Diagnostic.replacement)
  in
  Alcotest.(check (list string)) "invention fix-it" [ "T(x)" ] fixits

(* ------------------------------------------------------------------ *)
(* Driver: parallel fan-out is deterministic (jobs-independent) *)

let test_driver_jobs_independent () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "calm_lint_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i (_, src) ->
      let oc = open_out (Filename.concat dir (Printf.sprintf "z%02d.dlog" i)) in
      output_string oc src;
      close_out oc)
    zoo_sources;
  let files =
    match A.Driver.collect [ dir ] with
    | Ok fs -> fs
    | Error msg -> Alcotest.failf "collect: %s" msg
  in
  Alcotest.(check int) "collect finds the fixtures"
    (List.length zoo_sources) (List.length files);
  let render jobs = A.Driver.render_json (A.Driver.run ~jobs files) in
  Alcotest.(check string) "jobs=4 report = jobs=1 report" (render 1) (render 4)

(* ------------------------------------------------------------------ *)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_wall_random ]

let () =
  Alcotest.run "analysis"
    [
      ( "wall",
        [
          Alcotest.test_case "zoo: classify = certify + checked" `Quick
            test_wall_zoo;
          Alcotest.test_case "one certificate per fragment" `Quick
            test_wall_every_fragment;
          Alcotest.test_case "checker rejects tampering" `Quick
            test_checker_rejects_tampering;
        ] );
      ("fragment-table", [ Alcotest.test_case "table" `Quick test_fragment_table ]);
      ( "parser",
        [
          Alcotest.test_case "column in syntax errors" `Quick
            test_syntax_error_column;
          Alcotest.test_case "located spans" `Quick test_located_spans;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean program" `Quick test_lint_clean;
          Alcotest.test_case "codes registered" `Quick
            test_lint_codes_are_registered;
          Alcotest.test_case "unsafe variable" `Quick test_lint_unsafe_variable;
          Alcotest.test_case "syntax error span" `Quick
            test_lint_syntax_error_span;
          Alcotest.test_case "pragma claim" `Quick test_lint_pragma_claim;
          Alcotest.test_case "invention fix-it" `Quick test_lint_fixit;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs-independent" `Quick
            test_driver_jobs_independent;
        ] );
      ("properties", qcheck_cases);
    ]
