(* A regression corpus of classic Datalog¬ programs: each entry carries
   the program, an input instance, the expected output, and the expected
   syntactic fragment / CALM level. Exercises the parser, both engines,
   the classifiers, and the compiler on textbook workloads beyond the
   paper's own query zoo. *)

open Relational
open Datalog

let check_bool name expected actual = Alcotest.(check bool) name expected actual

let instance_testable = Alcotest.testable Instance.pp Instance.equal

type entry = {
  name : string;
  source : string;
  outputs : string list;
  input : string list;        (* fact strings *)
  expected : string list;     (* expected output facts *)
  fragment : string;          (* Fragment.to_string *)
  level : Calm_core.Hierarchy.level;
}

let corpus =
  [
    {
      name = "same-generation";
      source =
        "Sg(x,y) :- Flat(x,y).\n\
         Sg(x,y) :- Up(x,u), Sg(u,v), Down(v,y).";
      outputs = [ "Sg" ];
      input =
        [
          "Up(a,p1)"; "Up(b,p2)"; "Flat(p1,p2)"; "Down(p1,a2)"; "Down(p2,b2)";
        ];
      expected = [ "Sg(p1,p2)"; "Sg(a,b2)" ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "ancestor";
      source =
        "Anc(x,y) :- Par(x,y).\nAnc(x,z) :- Anc(x,y), Par(y,z).";
      outputs = [ "Anc" ];
      input = [ "Par(adam,seth)"; "Par(seth,enos)" ];
      expected = [ "Anc(adam,seth)"; "Anc(seth,enos)"; "Anc(adam,enos)" ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "bill-of-materials";
      source =
        "Uses(x,y) :- Part(x,y).\nUses(x,z) :- Uses(x,y), Part(y,z).";
      outputs = [ "Uses" ];
      input = [ "Part(car,engine)"; "Part(engine,piston)"; "Part(car,wheel)" ];
      expected =
        [
          "Uses(car,engine)"; "Uses(engine,piston)"; "Uses(car,wheel)";
          "Uses(car,piston)";
        ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "symmetric-closure";
      source = "S(x,y) :- E(x,y).\nS(x,y) :- E(y,x).";
      outputs = [ "S" ];
      input = [ "E(1,2)" ];
      expected = [ "S(1,2)"; "S(2,1)" ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "triangle-listing";
      source =
        "O(x,y,z) :- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z.";
      outputs = [ "O" ];
      input = [ "E(1,2)"; "E(2,3)"; "E(3,1)" ];
      expected = [ "O(1,2,3)"; "O(2,3,1)"; "O(3,1,2)" ];
      fragment = "Datalog(!=)";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "non-neighbours";
      source = "O(x,y) :- Adom(x), Adom(y), not E(x,y), x != y.";
      outputs = [ "O" ];
      input = [ "E(1,2)"; "E(2,1)"; "E(2,3)" ];
      expected = [ "O(1,3)"; "O(3,1)"; "O(3,2)" ];
      fragment = "SP-Datalog";
      level = Calm_core.Hierarchy.Domain_distinct;
    };
    {
      name = "sources";
      source =
        "HasIn(y) :- E(x,y).\nO(x) :- Adom(x), not HasIn(x).";
      outputs = [ "O" ];
      input = [ "E(1,2)"; "E(2,3)" ];
      expected = [ "O(1)" ];
      fragment = "con-Datalog^neg";
      level = Calm_core.Hierarchy.Domain_disjoint;
    };
    {
      name = "unreachable-from-root";
      source =
        "R(x) :- Root(x).\n\
         R(y) :- R(x), E(x,y).\n\
         O(x) :- Adom(x), not R(x).";
      outputs = [ "O" ];
      input = [ "Root(1)"; "E(1,2)"; "E(3,4)" ];
      expected = [ "O(3)"; "O(4)" ];
      fragment = "con-Datalog^neg";
      level = Calm_core.Hierarchy.Domain_disjoint;
    };
    {
      name = "two-colourability-violations";
      source =
        "U(x,y) :- E(x,y).\n\
         U(x,y) :- E(y,x).\n\
         OddWalk(x,y) :- U(x,y).\n\
         OddWalk(x,y) :- OddWalk(x,u), U(u,v), U(v,y).\n\
         O(x) :- OddWalk(x,x).";
      outputs = [ "O" ];
      input = [ "E(1,2)"; "E(2,3)"; "E(3,1)"; "E(4,5)" ];
      expected = [ "O(1)"; "O(2)"; "O(3)" ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
    {
      name = "orphans";
      source = "HasParent(x) :- Par(y,x).\nO(x) :- Adom(x), not HasParent(x).";
      outputs = [ "O" ];
      input = [ "Par(adam,seth)"; "Par(seth,enos)" ];
      expected = [ "O(adam)" ];
      fragment = "con-Datalog^neg";
      level = Calm_core.Hierarchy.Domain_disjoint;
    };
    {
      name = "paths-avoiding-banned";
      source =
        "Ok(x,y) :- E(x,y), not Banned(x), not Banned(y).\n\
         P(x,y) :- Ok(x,y).\n\
         P(x,z) :- P(x,y), Ok(y,z).\n\
         O(x,y) :- P(x,y).";
      outputs = [ "O" ];
      input = [ "E(1,2)"; "E(2,3)"; "E(3,4)"; "Banned(3)" ];
      expected = [ "O(1,2)" ];
      fragment = "SP-Datalog";
      level = Calm_core.Hierarchy.Domain_distinct;
    };
    {
      name = "company-control";
      source =
        (* x controls z if x directly owns z or controls an owner chain;
           toy version without aggregation. *)
        "Controls(x,y) :- Owns(x,y).\n\
         Controls(x,z) :- Controls(x,y), Owns(y,z).";
      outputs = [ "Controls" ];
      input = [ "Owns(acme,sub1)"; "Owns(sub1,sub2)" ];
      expected =
        [ "Controls(acme,sub1)"; "Controls(sub1,sub2)"; "Controls(acme,sub2)" ];
      fragment = "Datalog";
      level = Calm_core.Hierarchy.Monotone;
    };
  ]

let facts l = Instance.of_list (List.map Fact.of_string l)

let test_entry e () =
  let program = Program.parse ~outputs:e.outputs e.source in
  (* 1. fragment and level *)
  Alcotest.(check string)
    "fragment" e.fragment
    (Fragment.to_string (Program.fragment program));
  check_bool "level" true
    (Calm_core.Hierarchy.of_fragment (Program.fragment program) = e.level);
  (* 2. stratified output matches *)
  let out = Program.run program (facts e.input) in
  Alcotest.check instance_testable "output" (facts e.expected) out;
  (* 3. both engines agree on the full fixpoint *)
  let rules = program.Program.rules in
  (match (Eval.stratified rules (facts e.input), Hashjoin.stratified rules (facts e.input)) with
  | Ok a, Ok b -> Alcotest.check instance_testable "engines agree" a b
  | _ -> Alcotest.fail "stratification failed");
  (* 4. the well-founded model is total and agrees *)
  check_bool "well-founded agrees" true
    (Wellfounded.is_stratified_compatible rules (facts e.input));
  (* 5. the compiled coordination-free strategy reproduces the output on
        a 2-node network *)
  let compiled = Calm_core.Compile.compile_program program in
  let network = Distributed.network_of_ints [ 51; 52 ] in
  let policy =
    if compiled.Calm_core.Compile.domain_guided_only then
      Network.Policy.hash_value compiled.Calm_core.Compile.query.Query.input network
    else
      Network.Policy.hash_fact compiled.Calm_core.Compile.query.Query.input network
  in
  let result =
    Network.Run.run ~variant:compiled.Calm_core.Compile.variant ~policy
      ~transducer:compiled.Calm_core.Compile.transducer ~input:(facts e.input)
      Network.Run.Round_robin
  in
  check_bool "distributed run quiesced" true result.Network.Run.quiesced;
  Alcotest.check instance_testable "distributed output" out
    result.Network.Run.outputs

let () =
  Alcotest.run "corpus"
    [
      ( "programs",
        List.map
          (fun e -> Alcotest.test_case e.name `Slow (test_entry e))
          corpus );
    ]
