(* Fault-injection battery: the eventual-correctness test wall.

   The paper's coordination-free strategies (Theorems 4.3–4.5) are
   correct under any fair run — including runs with duplicated,
   delayed/lost-and-retransmitted messages, crash/restart from the
   persistent input partition, and healing partitions. This battery
   pins that operationally: every zoo query × placement × scheduler ×
   fault plan cell must reach the same outputs as the failure-free
   round-robin oracle, the empirical coordination verdicts must not
   flip under faults, faulty causal traces must validate and their
   provenance cones replay, and the Faulty wrapper with an empty plan
   must be byte-identical to its base scheduler. *)

open Relational
open Network
open Queries

let v = Value.int
let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual
let check_str name expected actual = Alcotest.(check string) name expected actual

let instance_testable = Alcotest.testable Instance.pp Instance.equal

let graph = Graph_gen.schema
let net3 = Distributed.network_of_ints [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Fault plans: one per fault type, plus the all-faults default. *)

let dup_plan = { Fault.none with seed = 3; dup_prob = 0.5; dup_copies = 3 }

let loss_plan =
  { Fault.none with seed = 4; loss_prob = 0.3; loss_delay = 2; horizon = 6 }

let crash_plan = { Fault.none with crashes = [ (v 2, 2) ] }

let part_plan =
  {
    Fault.none with
    partitions =
      [ { Fault.from_round = 1; rounds = 2; groups = [ [ v 1 ]; [ v 2; v 3 ] ] } ];
  }

let all_plan = Fault.default

let plans =
  [
    ("dup", dup_plan);
    ("loss", loss_plan);
    ("crash", crash_plan);
    ("part", part_plan);
    ("all", all_plan);
  ]

(* ------------------------------------------------------------------ *)
(* Plan grammar *)

let test_plan_roundtrip () =
  List.iter
    (fun (label, plan) ->
      match Fault.of_string (Fault.to_string plan) with
      | Ok plan' ->
        check_str (label ^ " round-trips") (Fault.to_string plan)
          (Fault.to_string plan')
      | Error m -> Alcotest.failf "%s: %s" label m)
    (("none", Fault.none) :: plans);
  (match Fault.of_string "seed=7;dup=0.4x3;loss=0.25:2;crash=2@4;part=1|2,3@2+3"
   with
  | Ok p ->
    check_bool "parsed plan has faults" false (Fault.is_none p);
    check_int "crash schedule parsed" 1 (List.length p.Fault.crashes)
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match Fault.of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad plan %S" bad
      | Error _ -> ())
    [ "dup=1.5"; "loss=0.2:0"; "crash=2"; "part=1|2"; "bogus=1"; "seed" ]

(* ------------------------------------------------------------------ *)
(* The headline battery: zoo queries × placements × schedulers × plans *)

let base_schedulers =
  [
    ("round_robin", Run.Round_robin);
    ("random", Run.Random { seed = 1; steps = 40 });
    ("stingy", Run.Stingy { seed = 2; steps = 60 });
    ("adversarial", Run.Adversarial { steps = 40 });
  ]

let battery_specs =
  [
    ( "tc",
      Calm_core.Hierarchy.Monotone,
      Zoo.tc,
      Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] );
    ( "comp_tc",
      Calm_core.Hierarchy.Domain_disjoint,
      Zoo.comp_tc,
      Graph_gen.of_edges [ (1, 2); (2, 3) ] );
    ( "winmove",
      Calm_core.Hierarchy.Domain_disjoint,
      Zoo.winmove,
      Calm_core.Empirical.winmove_input );
  ]

let battery_cells compiled =
  let policies =
    Netquery.default_policies
      ~domain_guided_only:compiled.Calm_core.Compile.domain_guided_only
      compiled.Calm_core.Compile.query.Query.input net3
  in
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun (sname, sched) ->
          List.map
            (fun (pname, plan) ->
              ( Policy.name policy ^ "/" ^ sname ^ "+" ^ pname,
                policy,
                Run.Faulty { base = sched; plan } ))
            plans)
        base_schedulers)
    policies

let test_battery () =
  List.iter
    (fun (name, level, query, input) ->
      let compiled = Calm_core.Compile.compile_any ~level query in
      let oracle = Query.apply query input in
      (* The failure-free round-robin oracle equals Q(I). *)
      let policies =
        Netquery.default_policies
          ~domain_guided_only:compiled.Calm_core.Compile.domain_guided_only
          compiled.Calm_core.Compile.query.Query.input net3
      in
      let r0 =
        Run.run ~variant:compiled.Calm_core.Compile.variant
          ~policy:(List.hd policies)
          ~transducer:compiled.Calm_core.Compile.transducer ~input
          Run.Round_robin
      in
      Alcotest.check instance_testable (name ^ ": oracle = Q(I)") oracle
        r0.Run.outputs;
      let results =
        Run.sweep ~variant:compiled.Calm_core.Compile.variant
          ~transducer:compiled.Calm_core.Compile.transducer ~input
          (battery_cells compiled)
      in
      check_bool (name ^ ": battery is nonempty") true (results <> []);
      List.iter
        (fun (label, r, _events) ->
          check_bool
            (Printf.sprintf "%s/%s quiesced" name label)
            true r.Run.quiesced;
          Alcotest.check instance_testable
            (Printf.sprintf "%s/%s output = oracle" name label)
            oracle r.Run.outputs)
        results)
    battery_specs

(* The all-faults slice of the battery is deterministic across --jobs:
   same results, same events, same stable metrics. *)
let test_battery_jobs_invariant () =
  let name, level, query, input = List.hd battery_specs in
  let compiled = Calm_core.Compile.compile_any ~level query in
  let cells =
    List.filter
      (fun (label, _, _) ->
        String.length label >= 4
        && String.sub label (String.length label - 4) 4 = "+all")
      (battery_cells compiled)
  in
  let sweep jobs =
    Observe.Metrics.reset Observe.Metrics.root;
    let results =
      Run.sweep ~jobs ~variant:compiled.Calm_core.Compile.variant
        ~transducer:compiled.Calm_core.Compile.transducer ~input cells
    in
    let rendered =
      List.map
        (fun (label, r, events) ->
          ( label,
            Instance.to_string r.Run.outputs,
            r.Run.transitions,
            Trace.to_jsonl events ))
        results
    in
    (rendered, Observe.Metrics.render_stable Observe.Metrics.root)
  in
  let seq, seq_metrics = sweep 1 in
  check_bool (name ^ ": some faults actually struck") true
    (seq_metrics <> "");
  List.iter
    (fun jobs ->
      let par, par_metrics = sweep jobs in
      check_bool
        (Printf.sprintf "%s: results at jobs=%d = jobs=1" name jobs)
        true (par = seq);
      check_str
        (Printf.sprintf "%s: stable metrics at jobs=%d = jobs=1" name jobs)
        seq_metrics par_metrics)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* 10³-node topology: one battery axis at scale, via Parallel.Pool *)

let test_thousand_nodes () =
  let n = 1000 in
  let network = Distributed.network_of_ints (List.init n (fun i -> 1 + i)) in
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let query = Zoo.tc in
  let compiled =
    Calm_core.Compile.compile_any ~level:Calm_core.Hierarchy.Monotone query
  in
  let expected = Query.apply query input in
  let big_plan =
    {
      Fault.seed = 11;
      dup_prob = 0.3;
      dup_copies = 2;
      loss_prob = 0.2;
      loss_delay = 1;
      horizon = 3;
      crashes = [ (v 500, 1) ];
      partitions =
        [
          {
            Fault.from_round = 1;
            rounds = 2;
            groups =
              [
                List.init (n / 2) (fun i -> v (1 + i));
                List.init (n / 2) (fun i -> v (1 + (n / 2) + i));
              ];
          };
        ];
    }
  in
  let policies =
    [ Policy.single graph network (v 1); Policy.hash_value graph network ]
  in
  let cells =
    List.concat_map
      (fun policy ->
        [
          (Policy.name policy ^ "/rr", policy, Run.Round_robin);
          ( Policy.name policy ^ "/rr+faults",
            policy,
            Run.Faulty { base = Run.Round_robin; plan = big_plan } );
        ])
      policies
  in
  let results =
    Run.sweep ~jobs:4 ~variant:compiled.Calm_core.Compile.variant
      ~transducer:compiled.Calm_core.Compile.transducer ~input cells
  in
  check_int "4 cells ran" 4 (List.length results);
  List.iter
    (fun (label, r, _) ->
      check_bool (label ^ " quiesced") true r.Run.quiesced;
      Alcotest.check instance_testable (label ^ " output") expected
        r.Run.outputs)
    results

(* ------------------------------------------------------------------ *)
(* heartbeat_prefix regression pin: rounds = steps taken, and
   quiesced=false exactly at max_steps when the state keeps growing *)

let growing_transducer =
  let schema =
    Transducer_schema.make ~input:graph
      ~output:(Schema.of_list [ ("O", 1) ])
      ~memory:(Schema.of_list [ ("C", 1) ])
      ()
  in
  Transducer.make ~schema
    ~ins:(fun d ->
      (* Memory grows by one fresh fact every transition: C(max+1). *)
      let m =
        List.fold_left
          (fun acc f ->
            match (Fact.rel f, Fact.arg f 0) with
            | "C", Value.Int i -> max acc i
            | _ -> acc)
          0 (Instance.to_list d)
      in
      Instance.of_list [ Fact.make "C" [ v (m + 1) ] ])
    ()

let test_heartbeat_pin () =
  let policy = Policy.single graph net3 (v 1) in
  let input = Graph_gen.of_edges [ (1, 2) ] in
  let max_steps = 7 in
  let r =
    Run.heartbeat_prefix ~max_steps ~variant:Config.policy_aware ~policy
      ~transducer:growing_transducer ~input ~node:(v 1) ()
  in
  check_int "transitions = max_steps" max_steps r.Run.transitions;
  check_int "rounds = steps taken" max_steps r.Run.rounds;
  check_bool "quiesced=false exactly at max_steps" false r.Run.quiesced;
  (* And a quiescing prefix still reports its step count. *)
  let t = Strategies.Broadcast.transducer Zoo.tc in
  let r' =
    Run.heartbeat_prefix ~max_steps:200 ~variant:Config.oblivious ~policy
      ~transducer:t ~input ~node:(v 1) ()
  in
  check_bool "broadcast heartbeat quiesces" true r'.Run.quiesced;
  check_int "rounds = steps taken (quiescing)" r'.Run.transitions r'.Run.rounds;
  check_bool "took fewer than max_steps" true (r'.Run.transitions < 200)

(* ------------------------------------------------------------------ *)
(* Empty fault plan ≡ base scheduler, byte for byte *)

let identity_compiled =
  Calm_core.Compile.compile_any ~level:Calm_core.Hierarchy.Monotone Zoo.tc

let identity_input = Graph_gen.of_edges [ (1, 2); (2, 3); (3, 4) ]

let run_rendered sched =
  Observe.Metrics.reset Observe.Metrics.root;
  let tracer = Trace.collector () in
  let policy = Policy.hash_value graph net3 in
  let r =
    Run.run ~tracer ~variant:identity_compiled.Calm_core.Compile.variant
      ~policy ~transducer:identity_compiled.Calm_core.Compile.transducer
      ~input:identity_input sched
  in
  ( Instance.to_string r.Run.outputs,
    (r.Run.transitions, r.Run.rounds, r.Run.messages_sent, r.Run.deliveries,
     r.Run.quiesced),
    Trace.to_jsonl (Trace.events tracer),
    Observe.Metrics.render_stable Observe.Metrics.root )

let prop_empty_plan_identity =
  QCheck2.Test.make ~name:"Faulty with empty plan = base scheduler" ~count:15
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let base = Run.Stingy { seed; steps = 50 } in
      let plan = { Fault.none with seed = seed + 1 } in
      run_rendered base = run_rendered (Run.Faulty { base; plan }))

let test_empty_plan_identity_jobs () =
  let policy = Policy.hash_value graph net3 in
  let plan = { Fault.none with seed = 99 } in
  let cells wrap =
    List.map
      (fun (sname, sched) ->
        ( sname,
          policy,
          if wrap then Run.Faulty { base = sched; plan } else sched ))
      base_schedulers
  in
  let sweep jobs wrap =
    Observe.Metrics.reset Observe.Metrics.root;
    let results =
      Run.sweep ~jobs ~variant:identity_compiled.Calm_core.Compile.variant
        ~transducer:identity_compiled.Calm_core.Compile.transducer
        ~input:identity_input (cells wrap)
    in
    ( List.map
        (fun (label, r, events) ->
          (label, Instance.to_string r.Run.outputs, Trace.to_jsonl events))
        results,
      Observe.Metrics.render_stable Observe.Metrics.root )
  in
  let base_seq = sweep 1 false in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "empty-plan sweep at jobs=%d = base at jobs=1" jobs)
        true
        (sweep jobs true = base_seq))
    [ 1; 2; 4 ]

let test_nested_faulty_rejected () =
  let plan = all_plan in
  let sched =
    Run.Faulty { base = Run.Faulty { base = Run.Round_robin; plan }; plan }
  in
  let policy = Policy.hash_value graph net3 in
  Alcotest.check_raises "nested Faulty raises"
    (Invalid_argument "Run.run: nested Faulty schedulers") (fun () ->
      ignore
        (Run.run ~variant:identity_compiled.Calm_core.Compile.variant ~policy
           ~transducer:identity_compiled.Calm_core.Compile.transducer
           ~input:identity_input sched))

(* ------------------------------------------------------------------ *)
(* Causal traces of faulty runs: schema-valid, replayable cones *)

let faulty_traced_run () =
  let policy = Policy.hash_value graph net3 in
  let tracer = Trace.collector () in
  let sched = Run.Faulty { base = Run.Round_robin; plan = all_plan } in
  let r =
    Run.run ~tracer ~variant:identity_compiled.Calm_core.Compile.variant
      ~policy ~transducer:identity_compiled.Calm_core.Compile.transducer
      ~input:identity_input sched
  in
  (policy, r, Trace.events tracer)

let test_faulty_trace_validates () =
  let _, r, events = faulty_traced_run () in
  check_bool "run quiesced" true r.Run.quiesced;
  (* The plan actually strikes: duplicated sends and a restart appear in
     the trace. *)
  check_bool "some event has dup > 1" true
    (List.exists (fun e -> e.Trace.dup > 1) events);
  check_bool "some event is a restart" true
    (List.exists (fun e -> e.Trace.restart) events);
  let doc = Trace.to_causal_json ~network:net3 events in
  (match Observe.Json.of_string doc with
  | Error m -> Alcotest.failf "causal doc is not JSON: %s" m
  | Ok j -> (
    match Observe.Schema_check.validate_causal j with
    | Ok () -> ()
    | Error m -> Alcotest.failf "causal doc rejected: %s" m));
  (* JSONL round-trip preserves the fault annotations. *)
  match Trace.of_jsonl (Trace.to_jsonl events) with
  | Error m -> Alcotest.failf "jsonl parse failed: %s" m
  | Ok events' ->
    check_str "jsonl roundtrip (fault fields included)"
      (Trace.to_jsonl events) (Trace.to_jsonl events')

let test_faulty_cones_replay () =
  let policy, r, events = faulty_traced_run () in
  let targets = Instance.to_list r.Run.outputs in
  check_bool "run produced outputs" true (targets <> []);
  List.iter
    (fun target ->
      match Provenance.cone_of events target with
      | None ->
        Alcotest.failf "%s has no cone in the trace" (Fact.to_string target)
      | Some cone -> (
        match
          Provenance.validate
            ~variant:identity_compiled.Calm_core.Compile.variant ~policy
            ~transducer:identity_compiled.Calm_core.Compile.transducer
            ~input:identity_input cone
        with
        | Ok () -> ()
        | Error m ->
          Alcotest.failf "cone of %s does not replay: %s"
            (Fact.to_string target) m))
    targets

(* ------------------------------------------------------------------ *)
(* Detection under faults: zoo stays AGREE, win-move flips per
   placement, forced-disagree pins exit code 2 *)

let test_zoo_agrees_under_faults () =
  let entries = Calm_core.Empirical.zoo ~jobs:2 ~faults:all_plan () in
  check_int "six zoo entries" 6 (List.length entries);
  List.iter
    (fun (en : Calm_core.Empirical.entry) ->
      check_bool
        (en.Calm_core.Empirical.name ^ ": agrees under faults")
        true en.Calm_core.Empirical.agree;
      check_int
        (en.Calm_core.Empirical.name ^ ": exit code 0 under faults")
        0
        (Calm_core.Empirical.exit_code en);
      check_bool
        (en.Calm_core.Empirical.name ^ ": battery labels are faulty")
        true
        (List.for_all
           (fun (vd : Calm_core.Empirical.policy_verdict) ->
             let l = vd.Calm_core.Empirical.label in
             String.length l >= 7
             && String.sub l (String.length l - 7) 7 = "+faults")
           en.Calm_core.Empirical.runs))
    entries;
  (* Win-move still flips with the placement under faults: the scatter
     runs coordinate, some co-located run stays free and correct. *)
  let wm =
    List.find
      (fun (en : Calm_core.Empirical.entry) ->
        en.Calm_core.Empirical.name = "winmove")
      entries
  in
  let scatter, colocated =
    List.partition
      (fun (vd : Calm_core.Empirical.policy_verdict) ->
        String.length vd.Calm_core.Empirical.label >= 8
        && String.sub vd.Calm_core.Empirical.label 0 8 = "scatter/")
      wm.Calm_core.Empirical.runs
  in
  check_bool "scatter cells present" true (scatter <> []);
  check_bool "every scatter run coordinates" true
    (List.for_all
       (fun (vd : Calm_core.Empirical.policy_verdict) ->
         vd.Calm_core.Empirical.coordinated)
       scatter);
  check_bool "some co-located run is free and correct" true
    (List.exists
       (fun (vd : Calm_core.Empirical.policy_verdict) ->
         vd.Calm_core.Empirical.correct && vd.Calm_core.Empirical.quiesced
         && not vd.Calm_core.Empirical.coordinated)
       colocated)

let test_forced_disagree_exit_codes () =
  let check_fixture label entry =
    check_bool (label ^ ": disagrees") false
      entry.Calm_core.Empirical.agree;
    check_int (label ^ ": exit code 2") 2
      (Calm_core.Empirical.exit_code entry);
    check_bool (label ^ ": every run has wrong output") true
      (List.for_all
         (fun (vd : Calm_core.Empirical.policy_verdict) ->
           not vd.Calm_core.Empirical.correct)
         entry.Calm_core.Empirical.runs)
  in
  check_fixture "failure-free" (Calm_core.Empirical.forced_disagree ());
  check_fixture "faulty"
    (Calm_core.Empirical.forced_disagree ~faults:all_plan ())

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_empty_plan_identity ]

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [ Alcotest.test_case "grammar roundtrip+rejects" `Quick
            test_plan_roundtrip ] );
      ( "battery",
        [
          Alcotest.test_case "zoo × placement × scheduler × plan wall"
            `Slow test_battery;
          Alcotest.test_case "all-faults slice jobs-invariant" `Slow
            test_battery_jobs_invariant;
          Alcotest.test_case "1000-node topology" `Slow test_thousand_nodes;
        ] );
      ( "heartbeat",
        [ Alcotest.test_case "prefix pin" `Quick test_heartbeat_pin ] );
      ( "identity",
        [
          Alcotest.test_case "empty plan sweep across jobs" `Quick
            test_empty_plan_identity_jobs;
          Alcotest.test_case "nested Faulty rejected" `Quick
            test_nested_faulty_rejected;
        ]
        @ qcheck_cases );
      ( "causal",
        [
          Alcotest.test_case "faulty trace validates" `Quick
            test_faulty_trace_validates;
          Alcotest.test_case "faulty cones replay" `Quick
            test_faulty_cones_replay;
        ] );
      ( "detect",
        [
          Alcotest.test_case "zoo agrees under faults" `Slow
            test_zoo_agrees_under_faults;
          Alcotest.test_case "forced-disagree exit codes" `Quick
            test_forced_disagree_exit_codes;
        ] );
    ]
